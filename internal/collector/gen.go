package collector

import (
	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/tags"
)

// Gen holds the cd layout of the generational collector: the minor
// collector of Fig. 11 (promote the young generation into the old region,
// stopping at references that already point into the old generation) and
// the major collector §8 describes as "the same as the non-generational
// one" (copy both generations into a fresh old region).
type Gen struct {
	Layout *Layout
	Minor  names.Name // gc entry: collect the young generation
	Major  names.Name // gc entry: collect both generations
}

// mGen builds M_ρy,ρo(τ).
func mGen(ry, ro gR, tag tags.Tag) gclang.Type {
	return gclang.MT{Rs: []gR{ry, ro}, Tag: tag}
}

// BuildGen adds the generational collector's code blocks. Both entry
// points share the mutator interface of Fig. 11's gc:
//
//	gc : ∀[t:Ω][ry,ro](M_ry,ro((t)→0), M_ry,ro(t)) → 0
func BuildGen(l *Layout) Gen {
	g := Gen{Layout: l, Minor: "gcg", Major: "gcmajor"}
	buildGenMinor(l)
	buildGenMajor(l)
	return g
}

// buildGenMinor transliterates Fig. 11 with the Fig. 12 continuation
// protocol. Regions: ry (young), ro (old), r3 (continuations). Results
// are fully promoted: M_ro,ro(τ).
func buildGenMinor(l *Layout) {
	ry, ro, r3 := rv("ry"), rv("ro"), rv("r3")
	p := proto{
		rnames: []names.Name{"ry", "ro", "r3"},
		result: func(tag tags.Tag) gclang.Type { return mGen(ro, ro, tag) },
	}
	t := tv("t")

	for _, n := range []names.Name{"gcg", "gcendg", "copyg", "copypair1g", "copypair2g", "copyexist1g"} {
		l.Add(n, gclang.LamV{})
	}
	gcend := l.Addr("gcendg")
	copyA := l.Addr("copyg")
	pair1 := l.Addr("copypair1g")
	pair2 := l.Addr("copypair2g")
	exist1 := l.Addr("copyexist1g")

	fTy := func(arg tags.Tag) gclang.Type { return mGen(ry, ro, codeTag(arg)) }

	// gcg[t:Ω][ry,ro](f, x) = let region r3 in let k = … in copyg[t][ry,ro,r3](x,k)
	l.Funs[l.Offset("gcg")].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: []names.Name{"ry", "ro"},
		Params: []gclang.Param{
			{Name: "f", Ty: fTy(t)},
			{Name: "x", Ty: mGen(ry, ro, t)},
		},
		Body: gclang.LetRegionT{R: "r3",
			Body: let("k", put(r3, p.mkCont(t, gcend, t, tags.Int{}, idTag, fTy(t), vr("f"))),
				gclang.AppT{Fn: copyA, Tags: []tags.Tag{t}, Rs: p.regions(),
					Args: []gV{vr("x"), vr("k")}})},
	}

	// gcendg[t1,t2,te][ry,ro,r3](y : M_ro,ro(t1), f) =
	//   only {ro} in let region ry' in f[][ry',ro](y)
	// — reclaim the young generation and the continuations, allocate a
	// fresh nursery, resume the mutator (Fig. 11's gc tail).
	l.Funs[l.Offset("gcendg")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "y", Ty: mGen(ro, ro, tv("t1"))},
			{Name: "f", Ty: fTy(tv("t1"))},
		},
		Body: gclang.OnlyT{Delta: []gR{ro},
			Body: gclang.LetRegionT{R: "ry2",
				Body: gclang.AppT{Fn: vr("f"), Rs: []gR{rv("ry2"), ro}, Args: []gV{vr("y")}}}},
	}

	prodT := tags.Prod{L: tv("t1"), R: tv("t2")}
	swapT := tags.Prod{L: tv("t2"), R: tv("t1")}
	existTag := tags.Exist{Bound: "u", Body: tags.App{Fn: tv("te"), Arg: tv("u")}}
	teApp := func(a tags.Tag) tags.Tag { return tags.App{Fn: tv("te"), Arg: a} }

	// repack rebuilds a region package witnessing allocation in the old
	// region (the "help the type-system" repack of §8).
	repack := func(val gV, body gclang.Type) gV {
		return gclang.PackRegion{Bound: "rp", Delta: []gR{ro}, R: ro, Val: val, Body: body}
	}

	// copyg[t:Ω][ry,ro,r3](x : M_ry,ro(t), k : tk[t]) = typecase t of …
	l.Funs[l.Offset("copyg")].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x", Ty: mGen(ry, ro, t)},
			{Name: "k", Ty: p.tkTy(t)},
		},
		Body: gclang.TypecaseT{
			Tag:    t,
			IntArm: p.retk(vr("k"), vr("x")),
			TL:     "tλ",
			LamArm: p.retk(vr("k"), vr("x")),
			T1:     "t1", T2: "t2",
			// t1×t2 ⇒ open the region package; old-generation objects are
			// returned unscanned (the generational invariant guarantees
			// they cannot point young); young objects are promoted.
			ProdArm: gclang.OpenRegionT{V: vr("x"), R: "rx", X: "xp",
				Body: gclang.IfRegT{R1: rv("rx"), R2: ro,
					Then: p.retk(vr("k"), repack(vr("xp"),
						gclang.ProdT{L: mGen(rv("rp"), ro, tv("t1")), R: mGen(rv("rp"), ro, tv("t2"))})),
					Else: let("y", get(vr("xp")),
						let("x1", proj(1, vr("y")),
							let("x2", proj(2, vr("y")),
								let("k1", put(r3, p.mkCont(tv("t1"), pair1, tv("t1"), tv("t2"), idTag,
									gclang.ProdT{L: mGen(ry, ro, tv("t2")), R: p.tkTy(prodT)},
									gclang.PairV{L: vr("x2"), R: vr("k")})),
									gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t1")}, Rs: p.regions(),
										Args: []gV{vr("x1"), vr("k1")}})))),
				}},
			Te: "te",
			ExistArm: gclang.OpenRegionT{V: vr("x"), R: "rx", X: "xp",
				Body: gclang.IfRegT{R1: rv("rx"), R2: ro,
					Then: p.retk(vr("k"), repack(vr("xp"),
						gclang.ExistT{Bound: "u", Kind: omega, Body: mGen(rv("rp"), ro, teApp(tv("u")))})),
					Else: let("y", get(vr("xp")),
						gclang.OpenTagT{V: vr("y"), T: "tx", X: "z",
							Body: let("k1", put(r3, p.mkCont(teApp(tv("tx")), exist1, tv("tx"), tags.Int{}, tv("te"),
								p.tkTy(existTag), vr("k"))),
								gclang.AppT{Fn: copyA, Tags: []tags.Tag{teApp(tv("tx"))}, Rs: p.regions(),
									Args: []gV{vr("z"), vr("k1")}})}),
				}},
		},
	}

	// copypair1g[t1,t2,te][ry,ro,r3](x1 : M_ro,ro(t1), c : M_ry,ro(t2) × tk[t1×t2])
	l.Funs[l.Offset("copypair1g")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x1", Ty: mGen(ro, ro, tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mGen(ry, ro, tv("t2")), R: p.tkTy(prodT)}},
		},
		Body: let("x2", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("k2", put(r3, p.mkCont(tv("t2"), pair2, tv("t2"), tv("t1"), idTag,
					gclang.ProdT{L: mGen(ro, ro, tv("t1")), R: p.tkTy(prodT)},
					gclang.PairV{L: vr("x1"), R: vr("k")})),
					gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t2")}, Rs: p.regions(),
						Args: []gV{vr("x2"), vr("k2")}}))),
	}

	// copypair2g[t1,t2,te][ry,ro,r3](x2 : M_ro,ro(t1), c : M_ro,ro(t2) × tk[t2×t1]):
	//   allocate the promoted pair in the old region and repack it.
	l.Funs[l.Offset("copypair2g")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x2", Ty: mGen(ro, ro, tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mGen(ro, ro, tv("t2")), R: p.tkTy(swapT)}},
		},
		Body: let("x1", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("np", put(ro, gclang.PairV{L: vr("x1"), R: vr("x2")}),
					letv("v", repack(vr("np"),
						gclang.ProdT{L: mGen(rv("rp"), ro, tv("t2")), R: mGen(rv("rp"), ro, tv("t1"))}),
						p.retk(vr("k"), vr("v")))))),
	}

	// copyexist1g[t1,t2,te][ry,ro,r3](z : M_ro,ro(te t1), c : tk[∃u.te u])
	l.Funs[l.Offset("copyexist1g")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "z", Ty: mGen(ro, ro, teApp(tv("t1")))},
			{Name: "c", Ty: p.tkTy(existTag)},
		},
		Body: let("np", put(ro, pack1("u", tv("t1"), vr("z"), mGen(ro, ro, teApp(tv("u"))))),
			letv("v", repack(vr("np"),
				gclang.ExistT{Bound: "u", Kind: omega, Body: mGen(rv("rp"), ro, teApp(tv("u")))}),
				p.retk(vr("c"), vr("v")))),
	}
}

// buildGenMajor is the full collection for the generational world: every
// live object from both generations is copied into a fresh region rn,
// after which rn becomes the old generation and a fresh nursery is
// allocated. Structurally it is the basic collector of Fig. 12 adapted to
// the two-index M operator.
func buildGenMajor(l *Layout) {
	ry, ro, rn, r3 := rv("ry"), rv("ro"), rv("rn"), rv("r3")
	p := proto{
		rnames: []names.Name{"ry", "ro", "rn", "r3"},
		result: func(tag tags.Tag) gclang.Type { return mGen(rn, rn, tag) },
	}
	t := tv("t")

	for _, n := range []names.Name{"gcmajor", "gcmajorendg", "copyfullg", "copypair1fg", "copypair2fg", "copyexist1fg"} {
		l.Add(n, gclang.LamV{})
	}
	gcend := l.Addr("gcmajorendg")
	copyA := l.Addr("copyfullg")
	pair1 := l.Addr("copypair1fg")
	pair2 := l.Addr("copypair2fg")
	exist1 := l.Addr("copyexist1fg")

	fTy := func(arg tags.Tag) gclang.Type { return mGen(ry, ro, codeTag(arg)) }

	// gcmajor[t:Ω][ry,ro](f, x) =
	//   let region rn in let region r3 in … copyfullg[t][ry,ro,rn,r3](x,k)
	l.Funs[l.Offset("gcmajor")].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: []names.Name{"ry", "ro"},
		Params: []gclang.Param{
			{Name: "f", Ty: fTy(t)},
			{Name: "x", Ty: mGen(ry, ro, t)},
		},
		Body: gclang.LetRegionT{R: "rn", Body: gclang.LetRegionT{R: "r3",
			Body: let("k", put(r3, p.mkCont(t, gcend, t, tags.Int{}, idTag, fTy(t), vr("f"))),
				gclang.AppT{Fn: copyA, Tags: []tags.Tag{t}, Rs: p.regions(),
					Args: []gV{vr("x"), vr("k")}})}},
	}

	// gcmajorendg: only {rn} survives; rn is the new old generation.
	l.Funs[l.Offset("gcmajorendg")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "y", Ty: mGen(rn, rn, tv("t1"))},
			{Name: "f", Ty: fTy(tv("t1"))},
		},
		Body: gclang.OnlyT{Delta: []gR{rn},
			Body: gclang.LetRegionT{R: "ry2",
				Body: gclang.AppT{Fn: vr("f"), Rs: []gR{rv("ry2"), rn}, Args: []gV{vr("y")}}}},
	}

	prodT := tags.Prod{L: tv("t1"), R: tv("t2")}
	swapT := tags.Prod{L: tv("t2"), R: tv("t1")}
	existTag := tags.Exist{Bound: "u", Body: tags.App{Fn: tv("te"), Arg: tv("u")}}
	teApp := func(a tags.Tag) tags.Tag { return tags.App{Fn: tv("te"), Arg: a} }

	repack := func(val gV, body gclang.Type) gV {
		return gclang.PackRegion{Bound: "rp", Delta: []gR{rn}, R: rn, Val: val, Body: body}
	}

	// copyfullg: like copyg but with no old-generation shortcut — every
	// boxed object is copied into rn.
	l.Funs[l.Offset("copyfullg")].Fun = gclang.LamV{
		TParams: []gclang.TParam{{Name: "t", Kind: omega}},
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x", Ty: mGen(ry, ro, t)},
			{Name: "k", Ty: p.tkTy(t)},
		},
		Body: gclang.TypecaseT{
			Tag:    t,
			IntArm: p.retk(vr("k"), vr("x")),
			TL:     "tλ",
			LamArm: p.retk(vr("k"), vr("x")),
			T1:     "t1", T2: "t2",
			ProdArm: gclang.OpenRegionT{V: vr("x"), R: "rx", X: "xp",
				Body: let("y", get(vr("xp")),
					let("x1", proj(1, vr("y")),
						let("x2", proj(2, vr("y")),
							let("k1", put(r3, p.mkCont(tv("t1"), pair1, tv("t1"), tv("t2"), idTag,
								gclang.ProdT{L: mGen(ry, ro, tv("t2")), R: p.tkTy(prodT)},
								gclang.PairV{L: vr("x2"), R: vr("k")})),
								gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t1")}, Rs: p.regions(),
									Args: []gV{vr("x1"), vr("k1")}}))))},
			Te: "te",
			ExistArm: gclang.OpenRegionT{V: vr("x"), R: "rx", X: "xp",
				Body: let("y", get(vr("xp")),
					gclang.OpenTagT{V: vr("y"), T: "tx", X: "z",
						Body: let("k1", put(r3, p.mkCont(teApp(tv("tx")), exist1, tv("tx"), tags.Int{}, tv("te"),
							p.tkTy(existTag), vr("k"))),
							gclang.AppT{Fn: copyA, Tags: []tags.Tag{teApp(tv("tx"))}, Rs: p.regions(),
								Args: []gV{vr("z"), vr("k1")}})})},
		},
	}

	l.Funs[l.Offset("copypair1fg")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x1", Ty: mGen(rn, rn, tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mGen(ry, ro, tv("t2")), R: p.tkTy(prodT)}},
		},
		Body: let("x2", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("k2", put(r3, p.mkCont(tv("t2"), pair2, tv("t2"), tv("t1"), idTag,
					gclang.ProdT{L: mGen(rn, rn, tv("t1")), R: p.tkTy(prodT)},
					gclang.PairV{L: vr("x1"), R: vr("k")})),
					gclang.AppT{Fn: copyA, Tags: []tags.Tag{tv("t2")}, Rs: p.regions(),
						Args: []gV{vr("x2"), vr("k2")}}))),
	}

	l.Funs[l.Offset("copypair2fg")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "x2", Ty: mGen(rn, rn, tv("t1"))},
			{Name: "c", Ty: gclang.ProdT{L: mGen(rn, rn, tv("t2")), R: p.tkTy(swapT)}},
		},
		Body: let("x1", proj(1, vr("c")),
			let("k", proj(2, vr("c")),
				let("np", put(rn, gclang.PairV{L: vr("x1"), R: vr("x2")}),
					letv("v", repack(vr("np"),
						gclang.ProdT{L: mGen(rv("rp"), rn, tv("t2")), R: mGen(rv("rp"), rn, tv("t1"))}),
						p.retk(vr("k"), vr("v")))))),
	}

	l.Funs[l.Offset("copyexist1fg")].Fun = gclang.LamV{
		TParams: contTParams(),
		RParams: p.rnames,
		Params: []gclang.Param{
			{Name: "z", Ty: mGen(rn, rn, teApp(tv("t1")))},
			{Name: "c", Ty: p.tkTy(existTag)},
		},
		Body: let("np", put(rn, pack1("u", tv("t1"), vr("z"), mGen(rn, rn, teApp(tv("u"))))),
			letv("v", repack(vr("np"),
				gclang.ExistT{Bound: "u", Kind: omega, Body: mGen(rv("rp"), rn, teApp(tv("u")))}),
				p.retk(vr("c"), vr("v")))),
	}
}
