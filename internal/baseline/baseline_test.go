package baseline

import (
	"testing"

	"psgc/internal/clos"
	"psgc/internal/closconv"
	"psgc/internal/cps"
	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/tags"
)

var pairTag = tags.Prod{L: tags.Int{}, R: tags.Int{}}

// buildDag allocates leaf=(1,2) and root=(leaf,leaf) in a fresh region.
func buildDag(mem *regions.Memory[gclang.Value]) (gclang.Value, tags.Tag) {
	r := mem.NewRegion()
	leaf, _ := mem.Put(r, gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}})
	root, _ := mem.Put(r, gclang.PairV{L: gclang.AddrV{Addr: leaf}, R: gclang.AddrV{Addr: leaf}})
	return gclang.AddrV{Addr: root}, tags.Prod{L: pairTag, R: pairTag}
}

func TestCopyWithoutForwardingDuplicates(t *testing.T) {
	mem := regions.New[gclang.Value](0)
	root, tag := buildDag(mem)
	_, _, st, err := CopyRoot(mem, tag, root, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 3 {
		t.Errorf("copied %d cells, want 3 (leaf duplicated)", st.Copied)
	}
}

func TestCopyWithForwardingShares(t *testing.T) {
	mem := regions.New[gclang.Value](0)
	root, tag := buildDag(mem)
	nr, to, st, err := CopyRoot(mem, tag, root, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 2 {
		t.Errorf("copied %d cells, want 2 (sharing preserved)", st.Copied)
	}
	// The copied root's components must alias.
	addr := nr.(gclang.AddrV)
	if addr.Addr.Region != to {
		t.Errorf("root not in to-space")
	}
	cell, _ := mem.Get(addr.Addr)
	pair := cell.(gclang.PairV)
	if pair.L != pair.R {
		t.Errorf("components no longer alias: %s vs %s", pair.L, pair.R)
	}
}

func TestCopyPackage(t *testing.T) {
	mem := regions.New[gclang.Value](0)
	r := mem.NewRegion()
	inner, _ := mem.Put(r, gclang.PairV{L: gclang.Num{N: 3}, R: gclang.Num{N: 4}})
	pk, _ := mem.Put(r, gclang.PackTag{Bound: "t", Tag: pairTag,
		Val: gclang.AddrV{Addr: inner}, Body: nil})
	cloTag := tags.Exist{Bound: "t", Body: tags.Var{Name: "t"}}
	_, _, st, err := CopyRoot(mem, cloTag, gclang.AddrV{Addr: pk}, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copied != 2 {
		t.Errorf("copied %d, want 2", st.Copied)
	}
}

func TestSpaceOverhead(t *testing.T) {
	m := SpaceOverhead(1000)
	if m.PairedWords != 1000 {
		t.Errorf("paired overhead = %d, want 1000", m.PairedWords)
	}
	if m.TagBitsWords != 16 {
		t.Errorf("tag-bit overhead = %d words, want 16", m.TagBitsWords)
	}
	if m.PairedWords <= m.TagBitsWords {
		t.Errorf("the paper's scheme should be cheaper")
	}
}

func TestSpecializationCountGrowsWithProgram(t *testing.T) {
	small := clos.Program{Main: clos.Halt{V: clos.Num{N: 0}}}
	if n := SpecializationCount(small); n != 0 {
		t.Errorf("empty program needs %d specializations, want 0", n)
	}
	// A program with several distinct types needs several specialized
	// copy functions under monomorphization; the ITA collector stays at 6.
	src := `
fun f (p : int * int) : int = fst p
fun g (q : (int * int) * int) : int = f (fst q)
do g ((1, 2), 3) + f (4, 5)
`
	p := source.MustParse(src)
	lp := closconv.MustConvert(cps.MustConvert(p))
	n := SpecializationCount(lp)
	if n <= ITACollectorBlocks {
		t.Errorf("specializations = %d, expected more than the constant %d ITA blocks",
			n, ITACollectorBlocks)
	}
}
