// Package baseline implements the *untrusted* comparison points of the
// paper's discussion: a copying collector written directly in Go over the
// same region memory (what every system before the paper had to trust,
// §1-2), a Wang–Appel-style pair-per-object forwarding representation
// (§7's footnote 1), and the code-size model of Wang–Appel's
// monomorphization approach (§2.1). These exist so the benchmarks can
// regenerate the paper's comparative claims; nothing here is typechecked
// by λGC.
package baseline

import (
	"fmt"

	"psgc/internal/clos"
	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// Stats reports the work an untyped collection performed.
type Stats struct {
	// Copied is the number of heap cells written to the to-space.
	Copied int
	// Visits is the number of object visits (≥ Copied when forwarding
	// shortcuts re-visits).
	Visits int
}

// CopyRoot performs a stop-and-copy collection in plain Go: it traverses
// the Base-dialect representation of a value of the given tag rooted at
// root, copying every reachable cell into a fresh region, and returns the
// relocated root, the new region, and statistics. With forwarding enabled
// it keeps a host-side forwarding table (the luxury the type-safe
// collector of Fig. 9 has to build inside the heap); without it, shared
// structure is duplicated exactly like Fig. 4's copy.
func CopyRoot(mem regions.Store[gclang.Value], tag tags.Tag, root gclang.Value, forwarding bool) (gclang.Value, regions.Name, Stats, error) {
	to := mem.NewRegion()
	c := &copier{mem: mem, to: to}
	if forwarding {
		c.fwd = map[regions.Addr]gclang.Value{}
	}
	out, err := c.copy(tag, root)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	return out, to, c.stats, nil
}

type copier struct {
	mem   regions.Store[gclang.Value]
	to    regions.Name
	fwd   map[regions.Addr]gclang.Value
	stats Stats
}

func (c *copier) copy(tag tags.Tag, v gclang.Value) (gclang.Value, error) {
	c.stats.Visits++
	nf, err := tags.Normalize(tag)
	if err != nil {
		return nil, err
	}
	switch t := nf.(type) {
	case tags.Int:
		return v, nil
	case tags.Code:
		return v, nil // code lives in cd, never copied
	case tags.Prod:
		addr, ok := v.(gclang.AddrV)
		if !ok {
			return nil, fmt.Errorf("baseline: pair value %s is not a reference", v)
		}
		if c.fwd != nil {
			if f, ok := c.fwd[addr.Addr]; ok {
				return f, nil
			}
		}
		cell, err := c.mem.Get(addr.Addr)
		if err != nil {
			return nil, err
		}
		pair, ok := cell.(gclang.PairV)
		if !ok {
			return nil, fmt.Errorf("baseline: pair cell holds %s", cell)
		}
		l, err := c.copy(t.L, pair.L)
		if err != nil {
			return nil, err
		}
		r, err := c.copy(t.R, pair.R)
		if err != nil {
			return nil, err
		}
		na, err := c.mem.Put(c.to, gclang.PairV{L: l, R: r})
		if err != nil {
			return nil, err
		}
		c.stats.Copied++
		out := gclang.AddrV{Addr: na}
		if c.fwd != nil {
			c.fwd[addr.Addr] = out
		}
		return out, nil
	case tags.Exist:
		addr, ok := v.(gclang.AddrV)
		if !ok {
			return nil, fmt.Errorf("baseline: package value %s is not a reference", v)
		}
		if c.fwd != nil {
			if f, ok := c.fwd[addr.Addr]; ok {
				return f, nil
			}
		}
		cell, err := c.mem.Get(addr.Addr)
		if err != nil {
			return nil, err
		}
		pk, ok := cell.(gclang.PackTag)
		if !ok {
			return nil, fmt.Errorf("baseline: package cell holds %s", cell)
		}
		inner := tags.Subst(t.Body, t.Bound, pk.Tag)
		nv, err := c.copy(inner, pk.Val)
		if err != nil {
			return nil, err
		}
		na, err := c.mem.Put(c.to, gclang.PackTag{
			Bound: pk.Bound, Kind: pk.Kind, Tag: pk.Tag, Val: nv, Body: pk.Body,
		})
		if err != nil {
			return nil, err
		}
		c.stats.Copied++
		out := gclang.AddrV{Addr: na}
		if c.fwd != nil {
			c.fwd[addr.Addr] = out
		}
		return out, nil
	default:
		return nil, fmt.Errorf("baseline: cannot copy open tag %s", nf)
	}
}

// SpaceModel compares per-object space overheads of the two forwarding
// disciplines of §7: the paper's single tag bit per object versus Wang and
// Appel's extra forwarding-pointer word paired with every object.
type SpaceModel struct {
	Objects      int // boxed objects in the heap
	TagBitsWords int // whole-heap overhead of the 1-bit scheme, in words
	PairedWords  int // overhead of the pair-per-object scheme, in words
}

// SpaceOverhead computes the space model for a heap of n boxed objects,
// assuming a word holds 64 tag bits when bits are packed.
func SpaceOverhead(objects int) SpaceModel {
	return SpaceModel{
		Objects:      objects,
		TagBitsWords: (objects + 63) / 64,
		PairedWords:  objects,
	}
}

// SpecializationCount models the code-size cost of Wang–Appel's
// monomorphization approach (§2.1): a specialized gc/copy pair is
// generated for every distinct type in the program. It returns the number
// of distinct (normalized) tags reachable from a λCLOS program's type
// annotations, closed under components — each would need its own copy
// routine — versus the constant 6 code blocks of the ITA collector.
func SpecializationCount(p clos.Program) int {
	seen := map[string]bool{}
	var visit func(t tags.Tag)
	visit = func(t tags.Tag) {
		nf, err := tags.Normalize(t)
		if err != nil {
			return
		}
		key := nf.String()
		if seen[key] {
			return
		}
		seen[key] = true
		switch t := nf.(type) {
		case tags.Prod:
			visit(t.L)
			visit(t.R)
		case tags.Code:
			for _, a := range t.Args {
				visit(a)
			}
		case tags.Exist:
			visit(t.Body)
		case tags.Lam:
			visit(t.Body)
		}
	}
	var walkTerm func(e clos.Term)
	var walkValue func(v clos.Value)
	walkValue = func(v clos.Value) {
		switch v := v.(type) {
		case clos.PairV:
			walkValue(v.L)
			walkValue(v.R)
		case clos.Pack:
			visit(v.Witness)
			visit(tags.Exist{Bound: v.Bound, Body: v.Body})
			walkValue(v.Val)
		}
	}
	walkTerm = func(e clos.Term) {
		switch e := e.(type) {
		case clos.LetVal:
			walkValue(e.V)
			walkTerm(e.Body)
		case clos.LetProj:
			walkValue(e.V)
			walkTerm(e.Body)
		case clos.LetArith:
			walkValue(e.L)
			walkValue(e.R)
			walkTerm(e.Body)
		case clos.App:
			walkValue(e.Fn)
			walkValue(e.Arg)
		case clos.Open:
			walkValue(e.V)
			walkTerm(e.Body)
		case clos.If0:
			walkValue(e.V)
			walkTerm(e.Then)
			walkTerm(e.Else)
		case clos.Halt:
			walkValue(e.V)
		}
	}
	for _, f := range p.Funs {
		visit(f.ParamType)
		walkTerm(f.Body)
	}
	walkTerm(p.Main)
	return len(seen)
}

// ITACollectorBlocks is the fixed code-block count of the library
// collector (gc, gcend, copy, copypair1, copypair2, copyexist1).
const ITACollectorBlocks = 6
