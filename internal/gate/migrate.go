package gate

// Live-stream migration (PR 10). The gate stamps every streaming /run with
// its own trace ID before forwarding, so it can later name the run to the
// backend's POST /snapshot. When the health loop sees a backend leave the
// "up" state, the gate pauses that backend's in-flight SSE runs at their
// next step boundary, carries each checkpoint blob to the run's ring
// successor via POST /resume, and splices the resumed stream into the
// client's connection — the client sees an unbroken event stream whose
// terminal result is bit-identical to an unmigrated run. The backend's
// "checkpointed" terminal frame is suppressed while a migration is in
// flight; it is the seam the splice hides.
//
// Resume is idempotent on the backend side (a snapshot identity resumes
// once, replays are 409), so the gate retries candidates freely: the worst
// a duplicate POST can do is lose the race and get told so.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

const (
	// snapshotTimeout bounds one POST /snapshot: the backend itself waits
	// SnapshotWaitMs (default 2s) for a step boundary.
	snapshotTimeout = 15 * time.Second
	// migrateWait bounds how long a relay that saw the "checkpointed" frame
	// waits for the snapshot blob before declaring the migration failed.
	migrateWait = 15 * time.Second
	// maxSnapshotBytes caps a snapshot response (heap images are bounded by
	// the backends' own limits; this is a transport sanity cap).
	maxSnapshotBytes = 64 << 20
)

// liveStream is one SSE run the gate is relaying, addressable for
// migration by its gate-minted trace ID.
type liveStream struct {
	traceID string
	// key is the run's affinity key, reused to pick resume candidates.
	key string

	mu      sync.Mutex
	backend string // backend currently serving the stream

	// migrating is true while a snapshot POST is in flight; blobCh hands
	// its result (nil on failure) to the relay goroutine.
	migMu     sync.Mutex
	migrating bool
	blobCh    chan []byte
}

func (st *liveStream) currentBackend() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.backend
}

func (st *liveStream) setBackend(base string) {
	st.mu.Lock()
	st.backend = base
	st.mu.Unlock()
}

// beginMigration claims the stream for one snapshot attempt.
func (st *liveStream) beginMigration() bool {
	st.migMu.Lock()
	defer st.migMu.Unlock()
	if st.migrating {
		return false
	}
	st.migrating = true
	return true
}

func (st *liveStream) inMigration() bool {
	st.migMu.Lock()
	defer st.migMu.Unlock()
	return st.migrating
}

func (st *liveStream) endMigration() {
	st.migMu.Lock()
	st.migrating = false
	st.migMu.Unlock()
}

// deliverBlob never blocks: blobCh is buffered one deep and a stream has
// at most one migration in flight.
func (st *liveStream) deliverBlob(blob []byte) {
	select {
	case st.blobCh <- blob:
	default:
	}
}

func (g *Gate) registerStream(st *liveStream) {
	g.streamMu.Lock()
	g.streams[st.traceID] = st
	g.streamMu.Unlock()
}

func (g *Gate) unregisterStream(traceID string) {
	g.streamMu.Lock()
	delete(g.streams, traceID)
	g.streamMu.Unlock()
}

// migrateStreams starts a snapshot/resume for every live stream the
// given backend is serving. Called when a backend leaves "up" — it is
// still expected to answer /snapshot (a degraded node sheds new work but
// serves what it has; a truly dead one fails the POST and the stream
// surfaces an error instead of a silent hang).
func (g *Gate) migrateStreams(base string) {
	g.streamMu.Lock()
	var targets []*liveStream
	for _, st := range g.streams {
		if st.currentBackend() == base {
			targets = append(targets, st)
		}
	}
	g.streamMu.Unlock()
	for _, st := range targets {
		if !st.beginMigration() {
			continue
		}
		g.wg.Add(1)
		go func(st *liveStream) {
			defer g.wg.Done()
			g.snapshotStream(base, st)
		}(st)
	}
}

// snapshotStream pauses one run on its degrading backend and hands the
// checkpoint blob to the stream's relay.
func (g *Gate) snapshotStream(base string, st *liveStream) {
	fail := func() {
		st.deliverBlob(nil)
		g.metrics.MigrationFailures.Add(1)
	}
	body, err := json.Marshal(map[string]string{"trace_id": st.traceID})
	if err != nil {
		fail()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), snapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/snapshot", bytes.NewReader(body))
	if err != nil {
		fail()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		fail()
		return
	}
	defer resp.Body.Close()
	g.metrics.BackendRequests.Add(base, 1)
	if resp.StatusCode != http.StatusOK {
		// 404/410: the run finished (or never registered) before the pause
		// landed; its own stream already carries the final answer, so this
		// is a no-op rather than a failure.
		io.Copy(io.Discard, resp.Body)
		st.endMigration()
		return
	}
	var snap struct {
		Blob []byte `json:"blob"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxSnapshotBytes)).Decode(&snap); err != nil || len(snap.Blob) == 0 {
		fail()
		return
	}
	st.deliverBlob(snap.Blob)
}

// frameVerdict classifies why relayFrames stopped.
type frameVerdict int

const (
	frameDone         frameVerdict = iota // terminal frame forwarded
	frameCheckpointed                     // suppressed checkpointed frame: splice here
	frameIOError                          // stream cut without a terminal frame
)

// relayFrames copies SSE frames from one backend response to the client
// until the run ends or checkpoints. A "checkpointed" frame is forwarded
// verbatim only when no migration is in flight (someone paused the run
// directly on the backend); during a migration it is suppressed — the
// resumed stream takes over mid-connection.
func (g *Gate) relayFrames(fw flushWriter, body io.Reader, st *liveStream) frameVerdict {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var frame bytes.Buffer
	event := ""
	for sc.Scan() {
		line := sc.Text()
		frame.WriteString(line)
		frame.WriteByte('\n')
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if line != "" {
			continue
		}
		// Frame complete.
		if event == "checkpointed" && st.inMigration() {
			return frameCheckpointed
		}
		fw.Write(frame.Bytes())
		if event == "result" || event == "error" || event == "checkpointed" {
			return frameDone
		}
		frame.Reset()
		event = ""
	}
	return frameIOError
}

// resumeStream waits for the migration blob and continues the run on a
// ring successor, returning the new live response.
func (g *Gate) resumeStream(r *http.Request, st *liveStream) (*http.Response, bool) {
	var blob []byte
	select {
	case blob = <-st.blobCh:
	case <-time.After(migrateWait):
	case <-r.Context().Done():
		return nil, false
	}
	if len(blob) == 0 {
		return nil, false
	}
	old := st.currentBackend()
	payload, err := json.Marshal(map[string]any{"blob": blob, "stream": true})
	if err != nil {
		return nil, false
	}
	for _, base := range g.candidates(st.key) {
		if base == old {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, base+"/resume?stream=1", bytes.NewReader(payload))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Trace-Id", st.traceID)
		resp, err := g.client.Do(req)
		if err != nil {
			g.markDown(base, err)
			continue
		}
		g.metrics.BackendRequests.Add(base, 1)
		if resp.StatusCode != http.StatusOK {
			// 409 means a previous attempt won the resume race — the run is
			// alive somewhere, but this relay lost its thread; surface it.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		st.setBackend(base)
		st.endMigration()
		return resp, true
	}
	return nil, false
}

// relayStream relays a live SSE run to the client across migrations: each
// time the run checkpoints off a degrading backend, the relay splices in
// the resumed stream from its new home.
func (g *Gate) relayStream(w http.ResponseWriter, r *http.Request, resp *http.Response, st *liveStream) {
	for _, h := range []string{"Content-Type", "X-Trace-Id", "Cache-Control"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	g.metrics.countOutcome(resp.StatusCode)
	w.WriteHeader(resp.StatusCode)
	fw := flushWriter{w}
	body := resp.Body
	defer func() { body.Close() }()
	for {
		switch g.relayFrames(fw, body, st) {
		case frameDone:
			return
		case frameCheckpointed:
			next, ok := g.resumeStream(r, st)
			if !ok {
				g.metrics.MigrationFailures.Add(1)
				writeSSEError(fw, "migration failed: run checkpointed off "+st.currentBackend()+" but no backend could resume it")
				return
			}
			body.Close()
			body = next.Body
			g.metrics.Migrations.Add(1)
		case frameIOError:
			if r.Context().Err() != nil {
				return // the client went away, not the backend
			}
			writeSSEError(fw, fmt.Sprintf("backend %s dropped the stream mid-run", st.currentBackend()))
			return
		}
	}
}

// writeSSEError emits a terminal error frame on an already-started stream
// (the status line is long gone; the event is all the signal we have).
func writeSSEError(fw flushWriter, msg string) {
	data, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		return
	}
	fmt.Fprintf(fw, "event: error\ndata: %s\n\n", data)
}
