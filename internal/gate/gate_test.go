package gate_test

// Integration tests: a real gate in front of real service backends over
// real HTTP listeners — routing affinity, failover, health rebalancing,
// the peer cache tier, SSE passthrough, and batch splitting.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"psgc/internal/gate"
	"psgc/internal/service"
	"psgc/internal/workload"
)

// fleet is a gate plus its backends, each on a real listener.
type fleet struct {
	gate     *gate.Gate
	gateURL  string
	backends []*backendProc
}

// backendProc is one service on a killable, revivable listener.
type backendProc struct {
	svc  *service.Server
	http *http.Server
	addr string
	url  string
}

func startBackend(t *testing.T, cfg service.Config, addr string) *backendProc {
	t.Helper()
	var l net.Listener
	var err error
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// A revived backend re-listens on its old address; give the kernel a
	// beat to release it.
	for i := 0; i < 50; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	b := &backendProc{
		svc:  service.New(cfg),
		addr: l.Addr().String(),
	}
	b.url = "http://" + b.addr
	b.http = &http.Server{Handler: b.svc}
	go b.http.Serve(l)
	return b
}

// kill stops the backend's listener and drops its connections, like a
// crashed process.
func (b *backendProc) kill() {
	b.http.Close()
}

func startFleet(t *testing.T, n int, cfg gate.Config, backendCfg service.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		b := startBackend(t, backendCfg, "")
		f.backends = append(f.backends, b)
		cfg.Backends = append(cfg.Backends, b.url)
	}
	g, err := gate.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.gate = g
	ts := httptest.NewServer(g)
	f.gateURL = ts.URL
	t.Cleanup(func() {
		ts.Close()
		g.Close()
		for _, b := range f.backends {
			b.kill()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			b.svc.Shutdown(ctx)
			cancel()
		}
	})
	// Point every backend's peer fetch at the gate, as the fleet quickstart
	// does with -peer/-self.
	for _, b := range f.backends {
		b.svc.SetPeerFetch(f.gateURL+"/peer/fetch", b.url)
	}
	return f
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeAs[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	return v
}

func runReq(n int, collector string) service.RunRequest {
	return service.RunRequest{
		CompileRequest: service.CompileRequest{Source: workload.AllocHeavySrc(n), Collector: collector},
	}
}

func wantValue(n int) int { return n * (n + 1) / 2 }

// TestGateRoutesByAffinity: repeat submissions of one program land on one
// backend (the second is a cache hit there), and the gate relays backend
// trace IDs.
func TestGateRoutesByAffinity(t *testing.T) {
	f := startFleet(t, 3, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 16})

	resp, body := post(t, f.gateURL+"/run", runReq(21, "forwarding"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Errorf("gate did not relay the backend trace ID")
	}
	first := decodeAs[service.RunResponse](t, body)
	if first.Value != wantValue(21) || first.Cached {
		t.Fatalf("first run: %+v", first)
	}
	resp, body = post(t, f.gateURL+"/run", runReq(21, "forwarding"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d: %s", resp.StatusCode, body)
	}
	if second := decodeAs[service.RunResponse](t, body); !second.Cached {
		t.Errorf("affinity broken: repeat submission missed the cache: %+v", second)
	}
	// Exactly one backend saw both requests.
	counts := f.gate.Metrics().BackendRequests.Snapshot()
	var with2 int
	for _, c := range counts {
		if c == 2 {
			with2++
		}
	}
	if with2 != 1 {
		t.Errorf("backend request spread %v, want both runs on one backend", counts)
	}
}

// TestGateFailover: killing the backend that owns a key reroutes its
// requests to a survivor, invisibly to the client.
func TestGateFailover(t *testing.T) {
	f := startFleet(t, 3, gate.Config{Seed: 7, RetryBaseMs: 1}, service.Config{Workers: 2, QueueDepth: 16})

	resp, body := post(t, f.gateURL+"/run", runReq(33, "basic"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	// The owner is the backend that actually served the run (the gate's
	// per-backend counts also include peer-export probes, so ask the
	// backends themselves).
	var killed int
	for _, b := range f.backends {
		if b.svc.Metrics().RunRequests.Load() > 0 {
			b.kill()
			killed++
		}
	}
	if killed != 1 {
		t.Fatalf("killed %d owners, want exactly 1", killed)
	}
	resp, body = post(t, f.gateURL+"/run", runReq(33, "basic"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after kill: status %d: %s", resp.StatusCode, body)
	}
	if rr := decodeAs[service.RunResponse](t, body); rr.Value != wantValue(33) {
		t.Errorf("failover run computed %d, want %d", rr.Value, wantValue(33))
	}
	if f.gate.Metrics().Retries.Load() == 0 {
		t.Errorf("failover did not count a retry")
	}
	if f.gate.Metrics().Rebalances.Load() == 0 {
		t.Errorf("dead backend did not trigger a ring rebalance")
	}
}

// TestGateHealthRebalance: the health loop drops a killed backend from the
// ring and readmits it when it comes back, and a drained (shutting-down)
// backend leaves the ring off its own /healthz.
func TestGateHealthRebalance(t *testing.T) {
	f := startFleet(t, 3, gate.Config{Seed: 7, HealthEvery: 25 * time.Millisecond},
		service.Config{Workers: 1, QueueDepth: 8})

	waitRing := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(f.gateURL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h struct {
				Ring []string `json:"ring"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(body, &h); err != nil {
				t.Fatalf("healthz: %v: %s", err, body)
			}
			if len(h.Ring) == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("ring never converged to %d nodes", want)
	}

	waitRing(3)
	victim := f.backends[1]
	victim.kill()
	waitRing(2)

	// Revive on the same address: the ring readmits it and, because ring
	// placement depends only on (seed, name), it gets its old keys back.
	revived := startBackend(t, service.Config{Workers: 1, QueueDepth: 8}, victim.addr)
	t.Cleanup(func() {
		revived.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		revived.svc.Shutdown(ctx)
		cancel()
	})
	waitRing(3)

	// A draining backend reports shutting_down on /healthz and must leave
	// the ring even though its listener still answers.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	f.backends[2].svc.Shutdown(ctx)
	cancel()
	waitRing(2)
	if f.gate.Metrics().Rebalances.Load() < 3 {
		t.Errorf("rebalances = %d, want at least 3 (leave, return, drain)", f.gate.Metrics().Rebalances.Load())
	}
}

// TestGatePeerCacheTier: a backend that misses its local cache pulls the
// compiled entry from a sibling through the gate instead of recompiling.
func TestGatePeerCacheTier(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 16})
	a, b := f.backends[0], f.backends[1]

	src := workload.AllocHeavySrc(27)
	// Compile on A directly (bypassing the gate, as if routed there).
	resp, body := post(t, a.url+"/run", service.RunRequest{
		CompileRequest: service.CompileRequest{Source: src, Collector: "generational"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run on A: status %d: %s", resp.StatusCode, body)
	}
	// Run the same program on B directly: its local miss goes through the
	// gate's peer tier and finds A's entry.
	resp, body = post(t, b.url+"/run", service.RunRequest{
		CompileRequest: service.CompileRequest{Source: src, Collector: "generational"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run on B: status %d: %s", resp.StatusCode, body)
	}
	if rr := decodeAs[service.RunResponse](t, body); rr.Value != wantValue(27) {
		t.Errorf("peer-served run computed %d, want %d", rr.Value, wantValue(27))
	}
	if got := b.svc.Metrics().PeerHits.Load(); got != 1 {
		t.Errorf("backend B peer hits = %d, want 1", got)
	}
	if got := f.gate.Metrics().PeerHits.Load(); got != 1 {
		t.Errorf("gate peer hits = %d, want 1", got)
	}
	if ratio := f.gate.Metrics().PeerHitRatio(); ratio <= 0 {
		t.Errorf("gate peer hit ratio = %v, want > 0", ratio)
	}
}

// TestGateSSEPassthrough: a streamed run through the gate keeps its SSE
// content type and delivers progress events ahead of the result.
func TestGateSSEPassthrough(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 1, QueueDepth: 8})

	cap := 24
	payload, _ := json.Marshal(service.RunRequest{
		CompileRequest: service.CompileRequest{Source: workload.AllocHeavySrc(30), Collector: "forwarding"},
		Capacity:       &cap,
		ProgressSteps:  500,
	})
	resp, err := http.Post(f.gateURL+"/run?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var events, progress int
	var last string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events++
			last = name
			if name == "progress" {
				progress++
			}
		}
	}
	if progress == 0 || last != "result" {
		t.Errorf("stream through gate: %d events, %d progress, last %q; want progress then result", events, progress, last)
	}
}

// TestGateBatchSplit: a batch through the gate splits across backends by
// affinity and merges back in order, including isolated per-item failures.
func TestGateBatchSplit(t *testing.T) {
	f := startFleet(t, 3, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 32})

	var items []service.RunRequest
	for n := 5; n < 13; n++ {
		items = append(items, runReq(n, []string{"basic", "forwarding", "generational"}[n%3]))
	}
	items = append(items, runReq(5, "marksweep")) // isolated per-item 400
	resp, body := post(t, f.gateURL+"/batch", service.BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br struct {
		Items     []service.BatchItemResult `json:"items"`
		Completed int                       `json:"completed"`
		Failed    int                       `json:"failed"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("bad batch response: %v: %s", err, body)
	}
	if br.Completed != 8 || br.Failed != 1 || len(br.Items) != 9 {
		t.Fatalf("batch outcome %d/%d of %d items, want 8/1 of 9: %s", br.Completed, br.Failed, len(br.Items), body)
	}
	for i := 0; i < 8; i++ {
		if br.Items[i].Run == nil || br.Items[i].Run.Value != wantValue(i+5) {
			t.Errorf("item %d out of order or failed: %+v", i, br.Items[i])
		}
	}
	if br.Items[8].Error == nil || br.Items[8].Status != http.StatusBadRequest {
		t.Errorf("invalid item not isolated: %+v", br.Items[8])
	}
	splits := f.gate.Metrics().BatchSplits.Snapshot()
	var total int64
	for _, c := range splits {
		total += c
	}
	if total != 9 {
		t.Errorf("batch splits %v sum to %d, want 9", splits, total)
	}
	if len(splits) < 2 {
		t.Errorf("batch did not split across backends: %v", splits)
	}
}

// TestFleetSmoke is the CI fleet drill: a 3-node fleet serves a sweep of
// E1-style workloads through the gate while one backend is killed
// mid-run. Every request must complete — served by the owner, retried
// onto a survivor, or shed with a Retry-After — and the ring must
// converge to the survivors.
func TestFleetSmoke(t *testing.T) {
	f := startFleet(t, 3,
		gate.Config{Seed: 7, HealthEvery: 50 * time.Millisecond, RetryBaseMs: 1},
		service.Config{Workers: 2, QueueDepth: 64})

	const requests = 60
	type outcome struct {
		status     int
		retryAfter string
		body       string
	}
	results := make(chan outcome, requests)
	for i := 0; i < requests; i++ {
		go func(i int) {
			n := 10 + i%20
			col := []string{"basic", "forwarding", "generational"}[i%3]
			buf, _ := json.Marshal(runReq(n, col))
			resp, err := http.Post(f.gateURL+"/run", "application/json", bytes.NewReader(buf))
			if err != nil {
				results <- outcome{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
		}(i)
		if i == requests/2 {
			f.backends[0].kill()
		}
	}

	var ok, shed int
	for i := 0; i < requests; i++ {
		r := <-results
		switch {
		case r.status == http.StatusOK:
			ok++
		case (r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable) && r.retryAfter != "":
			shed++
		default:
			t.Errorf("lost request: status %d retry-after %q: %s", r.status, r.retryAfter, r.body)
		}
	}
	if ok == 0 {
		t.Fatalf("no request completed (%d shed)", shed)
	}
	t.Logf("fleet smoke: %d ok, %d shed with Retry-After", ok, shed)

	// Ring converges to the two survivors.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(f.gateURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Ring []string `json:"ring"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		json.Unmarshal(body, &h)
		if len(h.Ring) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never converged to the 2 survivors: %s", body)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if f.gate.Metrics().Rebalances.Load() == 0 {
		t.Errorf("killing a backend caused no rebalance")
	}
}

// TestGateNoBackends: a gate needs at least one backend.
func TestGateNoBackends(t *testing.T) {
	if _, err := gate.New(gate.Config{}); err == nil {
		t.Fatal("gate.New with no backends succeeded")
	}
	if _, err := gate.New(gate.Config{Backends: []string{"http://a", "http://a"}}); err == nil {
		t.Fatal("gate.New with duplicate backends succeeded")
	}
}

// TestGateMetricsExposition: the gate's Prometheus exposition parses and
// carries the fleet families.
func TestGateMetricsExposition(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 1, QueueDepth: 8})
	post(t, f.gateURL+"/run", runReq(9, "basic"))

	resp, err := http.Get(f.gateURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, fam := range []string{
		"psgc_gate_backend_requests_total",
		"psgc_gate_ring_rebalances_total",
		"psgc_gate_peer_fetch_total",
		"psgc_gate_peer_hit_ratio",
		"psgc_gate_batch_items_total",
		"psgc_gate_backend_up",
	} {
		if !bytes.Contains(body, []byte(fam)) {
			t.Errorf("exposition lacks %s", fam)
		}
	}
	if !bytes.Contains(body, []byte(fmt.Sprintf("backend=%q", f.backends[0].url))) {
		t.Errorf("exposition lacks per-backend labels: %s", body)
	}
}

// TestGateForwardsBackendAndPolicyQuery: the gate passes ?backend= and
// ?policy= through to the owning backend untouched, so fleet clients can
// pick the memory backend and the adaptive policy per request.
func TestGateForwardsBackendAndPolicyQuery(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 8})

	resp, body := post(t, f.gateURL+"/run?backend=arena&policy=adaptive", runReq(21, "basic"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via gate: status %d: %s", resp.StatusCode, body)
	}
	got := decodeAs[service.RunResponse](t, body)
	if got.Value != wantValue(21) {
		t.Fatalf("value %d, want %d", got.Value, wantValue(21))
	}
	if got.Backend != "arena" {
		t.Errorf("?backend=arena not forwarded: backend %q", got.Backend)
	}
	if got.Policy != "adaptive" || got.Decision == nil {
		t.Errorf("?policy=adaptive not forwarded: policy %q decision %+v", got.Policy, got.Decision)
	}

	// Unknown values still come back as the backend's 400, not a gate error.
	resp, body = post(t, f.gateURL+"/run?policy=bogus", runReq(21, "basic"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus policy via gate: status %d: %s", resp.StatusCode, body)
	}
}

// TestGatePolicyTelemetry: the health loop scrapes each backend's policy
// surface and re-exports it in the gate's /healthz and /metrics.
func TestGatePolicyTelemetry(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7, HealthEvery: 25 * time.Millisecond},
		service.Config{Workers: 1, QueueDepth: 8, DefaultPolicy: "adaptive"})
	resp, body := post(t, f.gateURL+"/run", runReq(15, "basic"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}

	// Wait for a health tick to scrape the now-nonzero backend counters.
	deadline := time.Now().Add(5 * time.Second)
	var seen bool
	for time.Now().Before(deadline) && !seen {
		hresp, err := http.Get(f.gateURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hbody, _ := io.ReadAll(hresp.Body)
		hresp.Body.Close()
		h := decodeAs[map[string]any](t, hbody)
		backends, _ := h["backends"].(map[string]any)
		for _, v := range backends {
			b, _ := v.(map[string]any)
			pol, ok := b["policy"].(map[string]any)
			if !ok {
				continue
			}
			if pol["default_policy"] != "adaptive" {
				t.Fatalf("scraped default_policy %v, want adaptive", pol["default_policy"])
			}
			if runs, _ := pol["profiled_runs"].(float64); runs >= 1 {
				seen = true
			}
		}
		if !seen {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !seen {
		t.Fatalf("gate healthz never surfaced a backend with profiled_runs >= 1")
	}

	mresp, err := http.Get(f.gateURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, fam := range []string{
		"psgc_gate_backend_profiled_runs",
		"psgc_gate_backend_profiles",
		"psgc_gate_backend_policy_decisions",
		"psgc_gate_backend_policy_flips",
	} {
		if !bytes.Contains(mbody, []byte(fam)) {
			t.Errorf("exposition lacks %s", fam)
		}
	}

	jresp, err := http.Get(f.gateURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	jbody, _ := io.ReadAll(jresp.Body)
	j := decodeAs[map[string]any](t, jbody)
	if _, ok := j["backend_policy"].(map[string]any); !ok {
		t.Errorf("json metrics lack backend_policy: %s", jbody)
	}
}
