package gate_test

// PR 10 integration tests: live-stream migration off a draining backend
// (snapshot on the old node, resume on a ring peer, one unbroken SSE
// stream for the client) and the gate-level compile singleflight.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/gate"
	"psgc/internal/service"
	"psgc/internal/workload"
)

// readEvent consumes one SSE event from a live stream.
func readEvent(sc *bufio.Scanner) (name string, data []byte, ok bool) {
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if name != "" || data != nil {
				return name, data, true
			}
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	return name, data, false
}

// TestGateStreamMigration is the fleet acceptance scenario: a streaming
// run through the gate is mid-flight when its backend drains for
// shutdown; the gate snapshots the run there, resumes it on a ring peer,
// and the client's single SSE connection ends in a result bit-identical
// to an uninterrupted run — with no "checkpointed" seam visible.
func TestGateStreamMigration(t *testing.T) {
	// Slow the machine down so the run is still in flight when the health
	// loop notices the drain.
	fault.Install(fault.NewRegistry(1).EnableDelay(fault.MachineStall, 0.05, 200*time.Microsecond))
	defer fault.Install(nil)

	f := startFleet(t, 3,
		gate.Config{Seed: 7, HealthEvery: 100 * time.Millisecond},
		service.Config{Workers: 2, QueueDepth: 16})

	// Uninterrupted reference, directly on a backend.
	capacity := 32
	req := service.RunRequest{
		CompileRequest: service.CompileRequest{Source: workload.AllocHeavySrc(30), Collector: "forwarding"},
		Capacity:       &capacity,
	}
	resp, body := post(t, f.backends[0].url+"/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d (%s)", resp.StatusCode, body)
	}
	ref := decodeAs[service.RunResponse](t, body)

	// The same run, streamed through the gate.
	req.ProgressSteps = 100
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.Post(f.gateURL+"/run?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", stream.StatusCode)
	}
	trace := stream.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("gate stream has no X-Trace-Id")
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if name, _, ok := readEvent(sc); !ok || name != "progress" {
		t.Fatalf("first stream event %q (ok=%v), want progress", name, ok)
	}

	// Which backend is serving the stream?
	var serving *backendProc
	for _, b := range f.backends {
		if b.svc.Metrics().StreamRequests.Load() == 1 {
			serving = b
		}
	}
	if serving == nil {
		t.Fatal("no backend reports the streaming run")
	}

	// Drain it. Its /healthz flips to shutting_down; the gate's next
	// health pass takes it off the ring and migrates its live streams.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serving.svc.Shutdown(shutCtx) }()

	// The client keeps reading one uninterrupted stream: progress events,
	// then a result. Never an error, never a visible checkpointed seam.
	var last string
	var lastData []byte
	for {
		name, data, ok := readEvent(sc)
		if !ok {
			break
		}
		last, lastData = name, data
	}
	if last != "result" {
		t.Fatalf("terminal stream event %q (%s), want result", last, lastData)
	}
	rr := decodeAs[service.RunResponse](t, lastData)
	if rr.Value != ref.Value {
		t.Errorf("migrated run value %d, want %d", rr.Value, ref.Value)
	}
	if rr.Stats != ref.Stats {
		t.Errorf("migrated run stats diverged:\n  migrated      %+v\n  uninterrupted %+v", rr.Stats, ref.Stats)
	}
	if !rr.Resumed || rr.ResumedFromStep <= 0 {
		t.Errorf("resumed/from = %v/%d, want a mid-run resume", rr.Resumed, rr.ResumedFromStep)
	}
	if rr.TraceID != trace {
		t.Errorf("result trace %q, want the stream's %q", rr.TraceID, trace)
	}
	if err := <-done; err != nil {
		t.Errorf("drained backend shutdown: %v", err)
	}
	if got := f.gate.Metrics().Migrations.Load(); got != 1 {
		t.Errorf("gate migrations = %d, want 1", got)
	}
	if got := f.gate.Metrics().MigrationFailures.Load(); got != 0 {
		t.Errorf("gate migration failures = %d, want 0", got)
	}
	// The run moved: the drained node snapshotted it, a peer resumed it.
	if got := serving.svc.Metrics().Snapshots.Load(); got != 1 {
		t.Errorf("drained backend snapshots = %d, want 1", got)
	}
	var resumes int64
	for _, b := range f.backends {
		if b != serving {
			resumes += b.svc.Metrics().Resumes.Load()
		}
	}
	if resumes != 1 {
		t.Errorf("peer resumes = %d, want 1", resumes)
	}
}

// TestGateCompileSingleflight pins the designation protocol: the first
// fleet-wide miss makes its requester the compile owner (404 — it
// compiles), and a follower arriving mid-compile is served from the
// owner's cache instead of being told to compile too.
func TestGateCompileSingleflight(t *testing.T) {
	f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 16})
	a, b := f.backends[0], f.backends[1]
	src := workload.AllocHeavySrc(23)
	hash := service.SourceHash(src)
	fetchURL := func(exclude string) string {
		return f.gateURL + "/peer/fetch?hash=" + hash + "&collector=forwarding&exclude=" + url.QueryEscape(exclude)
	}

	// First miss: A is designated owner and told to compile.
	resp, err := http.Get(fetchURL(a.url))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("first fleet-wide miss: %d, want 404 (requester compiles)", resp.StatusCode)
	}

	// Follower arrives while A's compile is "in flight": it must wait for
	// A's cache rather than get a 404 of its own.
	type result struct {
		status int
		peer   string
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(fetchURL(b.url))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		got <- result{status: resp.StatusCode, peer: resp.Header.Get("X-Psgc-Peer")}
	}()

	// A's compile lands a beat later.
	time.Sleep(250 * time.Millisecond)
	cresp, cbody := post(t, a.url+"/compile", service.CompileRequest{Source: src, Collector: "forwarding"})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("owner compile: %d (%s)", cresp.StatusCode, cbody)
	}

	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusOK || r.peer != a.url {
		t.Fatalf("follower fetch: status %d peer %q, want 200 from the owner %s", r.status, r.peer, a.url)
	}
	if got := f.gate.Metrics().CompileCoalesced.Load(); got != 1 {
		t.Errorf("compile_coalesced = %d, want 1", got)
	}

	// The counter is in the gate's /metrics surface.
	resp, err = http.Get(f.gateURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		PeerCache struct {
			CompileCoalesced int64 `json:"compile_coalesced"`
		} `json:"peer_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.PeerCache.CompileCoalesced != 1 {
		t.Errorf("gate /metrics compile_coalesced = %d, want 1", snap.PeerCache.CompileCoalesced)
	}
}

// TestGateCompileStorm: every backend misses the same program at once;
// the fleet compiles it exactly once.
func TestGateCompileStorm(t *testing.T) {
	f := startFleet(t, 3, gate.Config{Seed: 7}, service.Config{Workers: 4, QueueDepth: 32})
	src := workload.AllocHeavySrc(21)

	const perBackend = 4
	var wg sync.WaitGroup
	errs := make(chan string, perBackend*len(f.backends))
	for _, b := range f.backends {
		for i := 0; i < perBackend; i++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				buf, _ := json.Marshal(service.RunRequest{
					CompileRequest: service.CompileRequest{Source: src, Collector: "forwarding"},
				})
				resp, err := http.Post(u+"/run", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err.Error()
					return
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					errs <- string(body)
					return
				}
				var rr service.RunResponse
				if err := json.Unmarshal(body, &rr); err != nil || rr.Value != wantValue(21) {
					errs <- string(body)
				}
			}(b.url)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("storm request failed: %s", e)
	}

	// Every local miss was either served by a peer or was THE compile:
	// across the fleet, exactly one node paid for the program.
	var compiles int64
	for _, b := range f.backends {
		m := b.svc.Metrics()
		compiles += m.CacheMisses.Load() - m.PeerHits.Load()
	}
	if compiles != 1 {
		t.Errorf("fleet compiled the program %d times, want exactly 1", compiles)
	}
}
