package gate

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d|basic", i)
	}
	return keys
}

// TestRingDeterministicPlacement: placement is a pure function of (seed,
// membership) — node order must not matter, and a different seed must
// shuffle the keyspace.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	reversed := []string{"http://c", "http://b", "http://a"}
	r1 := NewRing(42, 64, nodes)
	r2 := NewRing(42, 64, reversed)
	r3 := NewRing(43, 64, nodes)

	sameAs42, moved43 := 0, 0
	for _, k := range ringKeys(2000) {
		if r1.Lookup(k) == "" {
			t.Fatalf("empty lookup for %q", k)
		}
		if r1.Lookup(k) == r2.Lookup(k) {
			sameAs42++
		}
		if r1.Lookup(k) != r3.Lookup(k) {
			moved43++
		}
	}
	if sameAs42 != 2000 {
		t.Errorf("same seed, same nodes: only %d/2000 keys agree", sameAs42)
	}
	if moved43 == 0 {
		t.Errorf("changing the seed moved no keys; placement ignores the seed")
	}
}

// TestRingBoundedMovement: removing (or adding) one node moves only the
// keys that node owned — strictly fewer than 2/N of the keyspace with
// virtual nodes at default scale — and every moved key moves for a reason.
func TestRingBoundedMovement(t *testing.T) {
	const n, keys = 5, 5000
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node-%d", i)
	}
	full := NewRing(7, 128, nodes)
	removed := nodes[2]
	without := NewRing(7, 128, append(append([]string{}, nodes[:2]...), nodes[3:]...))

	moved := 0
	for _, k := range ringKeys(keys) {
		before, after := full.Lookup(k), without.Lookup(k)
		if before != after {
			moved++
			if before != removed {
				t.Fatalf("key %q moved from surviving node %s to %s", k, before, after)
			}
		}
	}
	if bound := 2 * keys / n; moved >= bound {
		t.Errorf("removal moved %d/%d keys, want < %d (2/N)", moved, keys, bound)
	}
	if moved == 0 {
		t.Errorf("removal moved no keys; the removed node owned nothing")
	}

	// Adding a node: only keys that land on the newcomer move.
	grown := NewRing(7, 128, append(append([]string{}, nodes...), "http://node-new"))
	movedIn := 0
	for _, k := range ringKeys(keys) {
		before, after := full.Lookup(k), grown.Lookup(k)
		if before != after {
			movedIn++
			if after != "http://node-new" {
				t.Fatalf("key %q moved to old node %s on grow", k, after)
			}
		}
	}
	if bound := 2 * keys / (n + 1); movedIn >= bound {
		t.Errorf("addition moved %d/%d keys, want < %d (2/(N+1))", movedIn, keys, bound)
	}
}

// TestRingAffinityAcrossRebalance: a node that leaves and returns gets its
// exact keyspace back, so its compiled-program cache is warm again the
// moment it rejoins.
func TestRingAffinityAcrossRebalance(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	before := NewRing(11, 64, nodes)
	// b bounces: the rebuilt ring is constructed from the same seed and the
	// restored membership.
	after := NewRing(11, 64, []string{"http://d", "http://a", "http://c", "http://b"})
	for _, k := range ringKeys(3000) {
		if b, a := before.Lookup(k), after.Lookup(k); b != a {
			t.Fatalf("key %q owned by %s before the bounce, %s after", k, b, a)
		}
	}
}

// TestRingSuccessors: the failover chain starts at the owner and walks
// distinct nodes.
func TestRingSuccessors(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := NewRing(5, 64, nodes)
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%q) = %v, want 3 distinct nodes", k, succ)
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("successors(%q)[0] = %s, owner is %s", k, succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors(%q) repeats %s: %v", k, s, succ)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != 3 {
		t.Errorf("successors capped at node count: got %v", got)
	}
	empty := NewRing(5, 64, nil)
	if empty.Lookup("k") != "" || empty.Successors("k", 2) != nil {
		t.Errorf("empty ring must return no owners")
	}
}

// TestRingSameNodes covers the membership-equality fast path the gate uses
// to decide whether a health pass changed anything.
func TestRingSameNodes(t *testing.T) {
	r := NewRing(1, 16, []string{"a", "b"})
	if !r.sameNodes([]string{"b", "a"}) || !r.sameNodes([]string{"a", "b", "a", ""}) {
		t.Errorf("sameNodes must ignore order, duplicates, and empties")
	}
	if r.sameNodes([]string{"a"}) || r.sameNodes([]string{"a", "b", "c"}) || r.sameNodes(nil) {
		t.Errorf("sameNodes must detect membership changes")
	}
}
