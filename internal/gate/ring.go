package gate

// Seeded consistent-hash ring with virtual nodes: the routing core of the
// fleet front. Each backend contributes vnodes points on a 64-bit circle;
// a key routes to the first point clockwise from its own hash. The seed
// makes placement fully deterministic — two gates configured with the same
// seed and backend set route identically, and tests can pin placements.
//
// Consistent hashing is what makes the fleet's compiled-program caches
// compose: a given (source hash, collector) key always lands on the same
// backend while membership is stable, so that backend's local cache warms
// for exactly its share of the keyspace. When a node leaves, only the keys
// it owned move (about 1/N of the keyspace, bounded under 2/N in the ring
// tests); everyone else's cache stays warm. When it returns, its old keys
// come back to it — the points it contributes depend only on (seed, name),
// so affinity survives a bounce.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

type ringPoint struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring; build one with NewRing and
// replace it wholesale to change membership (the gate swaps rings under
// its own lock, so lookups never see a half-built ring).
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint // sorted by h
	nodes  []string    // sorted member names
}

// NewRing builds a ring over nodes with vnodes points per node. Placement
// depends only on (seed, node names), never on the order nodes are given.
func NewRing(seed uint64, vnodes int, nodes []string) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{seed: seed, vnodes: vnodes}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: r.hash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Identical hashes (vanishingly rare) tie-break by name so the
		// ring is still a pure function of (seed, membership).
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hash is FNV-64a over the seed bytes followed by the key.
func (r *Ring) hash(key string) uint64 {
	h := fnv.New64a()
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(r.seed >> (8 * i))
	}
	h.Write(seedBytes[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len reports the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the node owning key, or "" for an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(key)].node
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner: the owner first, then the nodes a failover would walk to.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.at(key); i < len(r.points) && len(out) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// at finds the index of the first point clockwise from the key's hash.
func (r *Ring) at(key string) int {
	kh := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// sameNodes reports whether the ring's membership equals nodes (order and
// duplicates ignored) — the gate's cheap "would a rebuild change anything"
// test.
func (r *Ring) sameNodes(nodes []string) bool {
	seen := map[string]bool{}
	uniq := 0
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq++
	}
	if uniq != len(r.nodes) {
		return false
	}
	for _, n := range r.nodes {
		if !seen[n] {
			return false
		}
	}
	return true
}
