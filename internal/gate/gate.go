// Package gate is the fleet front for psgc-served backends: one HTTP
// server that routes /run, /compile, and /interpret requests across N
// backends by consistent hashing on (source hash, collector), so each
// backend's compiled-program cache warms for its own shard of the
// keyspace. The gate health-checks backends off their /healthz (a
// shutting-down or degraded node leaves the ring; a recovered one
// returns), retries idempotent requests on surviving replicas with seeded
// jittered backoff — runs are deterministic, so a retry can never change
// the answer — and passes trace IDs, Retry-After, and SSE streams through
// untouched. It also serves the fleet's peer cache tier (/peer/fetch) and
// splits /batch requests into per-backend sub-batches along the same
// affinity.
package gate

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"psgc/internal/obs"
)

// Config sizes the gate.
type Config struct {
	// Backends are the psgc-served base URLs (e.g. http://127.0.0.1:8372).
	Backends []string
	// Seed drives ring placement and retry jitter; fixed seed, fixed fleet,
	// fixed routing.
	Seed uint64
	// VNodes is the virtual nodes per backend (default 64).
	VNodes int
	// HealthEvery is the health-check cadence (default 1s).
	HealthEvery time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// RetryMax is the total attempts per request across distinct replicas
	// (default 3, capped at the backend count).
	RetryMax int
	// RetryBaseMs is the backoff base before the 2nd attempt (default 25).
	RetryBaseMs int
	// PeerTimeout bounds one /cache/export fetch from a backend
	// (default 2s).
	PeerTimeout time.Duration
	// MaxBodyBytes caps proxied request bodies (default 1 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.RetryBaseMs <= 0 {
		c.RetryBaseMs = 25
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// backendPolicy is the adaptive-policy surface scraped from a backend's
// /healthz on each health pass: what the node defaults to and how much its
// profile store and decision engine have seen. The gate re-exports these
// per backend, giving the fleet view of where adaptive decisions happen.
type backendPolicy struct {
	DefaultPolicy string  `json:"default_policy,omitempty"`
	ProfiledRuns  float64 `json:"profiled_runs"`
	Profiles      float64 `json:"profiles"`
	Decisions     float64 `json:"decisions"`
	Flips         float64 `json:"flips"`
}

// backendState is what the gate believes about one backend.
type backendState struct {
	// state is "up", "degraded" (reachable but shedding), or "down".
	state   string
	lastErr string
	checks  int64
	policy  backendPolicy
}

// Gate is the fleet front. Create with New, serve it as an http.Handler,
// Close when done.
type Gate struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *Metrics
	start   time.Time

	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*backendState

	// streams tracks in-flight SSE runs by gate-minted trace ID, the
	// migration unit when a backend degrades (see migrate.go).
	streamMu sync.Mutex
	streams  map[string]*liveStream

	// compiling is the fleet-wide compile singleflight: key -> the backend
	// URL currently compiling it (see peer.go).
	sfMu      sync.Mutex
	compiling map[string]string

	rngMu sync.Mutex
	rng   *rand.Rand

	// client proxies requests (no overall timeout: SSE runs are long-lived;
	// per-run bounds are the backend's watchdog and the client's patience).
	client *http.Client
	// probe is the short-timeout client for health checks and peer fetches.
	probe *http.Client

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds the gate and starts its health loop. All configured backends
// start in the ring ("up" optimistically); the first health pass corrects
// the picture within HealthEvery.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gate: no backends configured")
	}
	g := &Gate{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		metrics:   &Metrics{},
		start:     time.Now(),
		backends:  map[string]*backendState{},
		streams:   map[string]*liveStream{},
		compiling: map[string]string{},
		rng:       rand.New(rand.NewSource(int64(cfg.Seed))),
		client:    &http.Client{},
		probe:     &http.Client{Timeout: cfg.HealthTimeout},
		stop:      make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		if _, dup := g.backends[b]; dup {
			return nil, fmt.Errorf("gate: duplicate backend %s", b)
		}
		g.backends[b] = &backendState{state: "up"}
	}
	g.ring = NewRing(cfg.Seed, cfg.VNodes, cfg.Backends)
	g.mux.HandleFunc("/run", g.handleProxy)
	g.mux.HandleFunc("/compile", g.handleProxy)
	g.mux.HandleFunc("/interpret", g.handleProxy)
	g.mux.HandleFunc("/batch", g.handleBatch)
	g.mux.HandleFunc("/peer/fetch", g.handlePeerFetch)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close stops the health loop.
func (g *Gate) Close() {
	close(g.stop)
	g.wg.Wait()
}

// Metrics exposes the registry (for the binary and tests).
func (g *Gate) Metrics() *Metrics { return g.metrics }

// ---------------------------------------------------------------------------
// Health and ring membership
// ---------------------------------------------------------------------------

func (g *Gate) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthEvery)
	defer t.Stop()
	g.checkAll()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.checkAll()
		}
	}
}

func (g *Gate) checkAll() {
	type verdict struct {
		url, state, lastErr string
		policy              backendPolicy
	}
	results := make(chan verdict, len(g.cfg.Backends))
	for _, b := range g.cfg.Backends {
		go func(b string) {
			state, errMsg, pol := g.checkBackend(b)
			results <- verdict{b, state, errMsg, pol}
		}(b)
	}
	g.mu.Lock()
	var left []string
	for range g.cfg.Backends {
		v := <-results
		st := g.backends[v.url]
		if st.state == "up" && v.state != "up" {
			left = append(left, v.url)
		}
		st.state = v.state
		st.lastErr = v.lastErr
		st.checks++
		if v.state != "down" {
			st.policy = v.policy
		}
	}
	g.rebuildLocked()
	g.mu.Unlock()
	// A backend that left "up" takes its in-flight streams with it unless
	// they move: snapshot each and resume on a ring successor.
	for _, b := range left {
		g.migrateStreams(b)
	}
}

// checkBackend probes one /healthz. "up" needs a 200 with status "ok" and
// no degradation; a shedding backend is "degraded" and leaves the ring
// until it recovers, so plain traffic concentrates on healthy replicas.
// The same probe scrapes the backend's adaptive-policy surface, so the
// gate's health pass doubles as the fleet's policy telemetry collector.
func (g *Gate) checkBackend(base string) (state, errMsg string, pol backendPolicy) {
	resp, err := g.probe.Get(base + "/healthz")
	if err != nil {
		return "down", err.Error(), pol
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "down", fmt.Sprintf("healthz status %d", resp.StatusCode), pol
	}
	var body struct {
		Status        string `json:"status"`
		Degradation   string `json:"degradation_mode"`
		DefaultPolicy string `json:"default_policy"`
		Policy        struct {
			ProfiledRuns float64 `json:"profiled_runs"`
			Profiles     float64 `json:"profiles"`
			Counts       struct {
				Decisions float64 `json:"decisions"`
				Flips     float64 `json:"flips"`
			} `json:"counts"`
		} `json:"policy"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return "down", "healthz: " + err.Error(), pol
	}
	pol = backendPolicy{
		DefaultPolicy: body.DefaultPolicy,
		ProfiledRuns:  body.Policy.ProfiledRuns,
		Profiles:      body.Policy.Profiles,
		Decisions:     body.Policy.Counts.Decisions,
		Flips:         body.Policy.Counts.Flips,
	}
	if body.Status != "ok" {
		return "down", "healthz status " + body.Status, pol
	}
	if body.Degradation != "" && body.Degradation != "normal" {
		return "degraded", "degradation " + body.Degradation, pol
	}
	return "up", "", pol
}

// markDown records a transport-level failure immediately, without waiting
// for the next health tick, so in-flight retries already route around the
// dead node.
func (g *Gate) markDown(base string, err error) {
	g.mu.Lock()
	transitioned := false
	if st, ok := g.backends[base]; ok && st.state != "down" {
		st.state = "down"
		st.lastErr = err.Error()
		g.rebuildLocked()
		transitioned = true
	}
	g.mu.Unlock()
	if transitioned {
		// Best-effort: a transport-dead node will fail the snapshot POST
		// too, but a node that only broke for one request may still serve it.
		g.migrateStreams(base)
	}
}

// rebuildLocked recomputes ring membership from backend states. Up nodes
// form the ring; if none are up, degraded nodes are better than nothing;
// an all-down fleet leaves the ring empty and requests fail fast with 503.
// Callers hold g.mu.
func (g *Gate) rebuildLocked() {
	var up, degraded []string
	for url, st := range g.backends {
		switch st.state {
		case "up":
			up = append(up, url)
		case "degraded":
			degraded = append(degraded, url)
		}
	}
	members := up
	if len(members) == 0 {
		members = degraded
	}
	if g.ring.sameNodes(members) {
		return
	}
	g.ring = NewRing(g.cfg.Seed, g.cfg.VNodes, members)
	g.metrics.Rebalances.Add(1)
}

// candidates returns the failover chain for a key: the owner plus ring
// successors, up to RetryMax distinct backends.
func (g *Gate) candidates(key string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.Successors(key, g.cfg.RetryMax)
}

// ---------------------------------------------------------------------------
// Proxying
// ---------------------------------------------------------------------------

// affinityKey is the routing key: the sha256 of the program source plus
// the collector, matching the backends' compiled-program cache key. An
// empty source (malformed request) still routes deterministically.
func affinityKey(source, collector string) string {
	h := sha256.Sum256([]byte(source))
	return hex.EncodeToString(h[:]) + "|" + collector
}

// retryable reports whether a backend response should fail over to the
// next replica: 502s and 503s mean this node cannot serve the request but
// another might (a draining node 503s everything; its siblings are fine).
// Anything else — including 429 backpressure and 504 watchdog cuts — is a
// real answer about the request and is relayed as-is.
func retryable(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

// backoff sleeps before retry attempt n (1-based) with seeded jitter:
// base * 2^(n-1) * [0.5, 1.5).
func (g *Gate) backoff(n int) {
	g.rngMu.Lock()
	f := 0.5 + g.rng.Float64()
	g.rngMu.Unlock()
	d := time.Duration(float64(g.cfg.RetryBaseMs)*float64(int(1)<<(n-1))*f) * time.Millisecond
	time.Sleep(d)
}

// forward tries candidates in order until one yields a non-retryable
// response, marking transport failures down as it goes. It returns the
// winning response (caller closes the body) and the backend that served
// it; err is non-nil only when every candidate failed at the transport
// level.
func (g *Gate) forward(r *http.Request, path string, body []byte, candidates []string) (*http.Response, string, error) {
	var lastErr error
	for i, base := range candidates {
		if i > 0 {
			g.metrics.Retries.Add(1)
			g.backoff(i)
		}
		// The raw query string passes through untouched, so per-request
		// knobs the backends own (?backend=, ?policy=, ?engine=, ?trace=,
		// ?cocheck=) work identically through the gate.
		url := base + path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		if accept := r.Header.Get("Accept"); accept != "" {
			req.Header.Set("Accept", accept)
		}
		// The gate stamps streaming runs with its own trace ID (and passes
		// caller IDs through) so POST /snapshot can later name the run.
		if id := r.Header.Get("X-Trace-Id"); id != "" {
			req.Header.Set("X-Trace-Id", id)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away; nothing to route around.
				return nil, "", err
			}
			g.markDown(base, err)
			lastErr = err
			continue
		}
		g.metrics.BackendRequests.Add(base, 1)
		if retryable(resp.StatusCode) && i < len(candidates)-1 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		return resp, base, nil
	}
	return nil, "", lastErr
}

// handleProxy routes /run, /compile, and /interpret by cache affinity.
func (g *Gate) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusRequestEntityTooLarge, "request body: "+err.Error())
		return
	}
	var aff struct {
		Source    string `json:"source"`
		Collector string `json:"collector"`
		Stream    bool   `json:"stream"`
	}
	// Affinity extraction is best-effort: a body the backend will reject
	// still routes deterministically off its raw bytes.
	if err := json.Unmarshal(body, &aff); err != nil {
		aff.Source = string(body)
	}
	key := affinityKey(aff.Source, aff.Collector)
	candidates := g.candidates(key)
	if len(candidates) == 0 {
		w.Header().Set("Retry-After", "1")
		g.writeError(w, http.StatusServiceUnavailable, "no healthy backends")
		return
	}
	// Streaming runs get a gate-minted trace ID (unless the caller sent
	// one) so the migration loop can address them by name.
	var st *liveStream
	if r.URL.Path == "/run" && (aff.Stream || queryFlag(r, "stream")) {
		traceID := r.Header.Get("X-Trace-Id")
		if traceID == "" {
			traceID = obs.NewTraceID()
			r.Header.Set("X-Trace-Id", traceID)
		}
		st = &liveStream{traceID: traceID, key: key, blobCh: make(chan []byte, 1)}
	}
	resp, base, err := g.forward(r, r.URL.Path, body, candidates)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		w.Header().Set("Retry-After", "1")
		g.writeError(w, http.StatusServiceUnavailable, "all backends failed: "+err.Error())
		return
	}
	if st != nil && resp.StatusCode == http.StatusOK &&
		strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		st.setBackend(base)
		g.registerStream(st)
		defer g.unregisterStream(st.traceID)
		defer resp.Body.Close()
		g.relayStream(w, r, resp, st)
		return
	}
	defer resp.Body.Close()
	g.relay(w, resp)
}

// queryFlag reports whether a boolean query knob is on, mirroring the
// backends' flagged() semantics closely enough for routing decisions.
func queryFlag(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v != "" && v != "0" && v != "false"
}

// relay copies a backend response to the client, streaming the body with
// per-write flushes so SSE events pass through as they happen.
func (g *Gate) relay(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "X-Trace-Id", "Retry-After", "Cache-Control", "Allow"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	g.metrics.countOutcome(resp.StatusCode)
	w.WriteHeader(resp.StatusCode)
	io.Copy(flushWriter{w}, resp.Body)
}

// flushWriter flushes after every write, which is what keeps proxied SSE
// streams live instead of buffered to the end of the run.
type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

func (g *Gate) writeError(w http.ResponseWriter, status int, msg string) {
	g.metrics.countOutcome(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]string{"error": msg})
}
