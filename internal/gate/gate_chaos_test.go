//go:build chaos

package gate_test

// Chaos through the gate: the fault matrix fires inside in-process
// backends while traffic arrives via the gate's routing layer, with the
// memory backend and the policy alternating per request. The gate must
// stay a transparent proxy: well-formed statuses, correct values on 200s,
// and no gate-level error substituted for a backend's.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/gate"
	"psgc/internal/service"
	"psgc/internal/workload"
)

// TestGateChaosAlternatingBackendsAndPolicies drives mixed traffic through
// the gate under each fault point that must stay invisible at this layer,
// alternating ?backend= between map and arena and ?policy= between static
// and adaptive.
func TestGateChaosAlternatingBackendsAndPolicies(t *testing.T) {
	points := []struct {
		name string
		reg  *fault.Registry
	}{
		{"worker.latency", fault.NewRegistry(201).EnableDelay(fault.WorkerLatency, 1, time.Millisecond)},
		{"machine.stall", fault.NewRegistry(202).EnableDelay(fault.MachineStall, 0.001, time.Millisecond)},
		{"cache.evict", fault.NewRegistry(203).Enable(fault.CacheEvict, 0.8)},
		{"policy.flip", fault.NewRegistry(204).Enable(fault.PolicyFlip, 1)},
	}
	backends := []string{"map", "arena"}
	policies := []string{"static", "adaptive"}
	collectors := []string{"basic", "forwarding", "generational"}

	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			fault.Install(p.reg)
			t.Cleanup(func() { fault.Install(nil) })
			f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 16})

			for i := 0; i < 12; i++ {
				n := 10 + i%8
				url := f.gateURL + "/run?backend=" + backends[i%2] + "&policy=" + policies[(i/2)%2]
				resp, body := post(t, url, service.RunRequest{
					CompileRequest: service.CompileRequest{
						Source:    workload.AllocHeavySrc(n),
						Collector: collectors[i%3],
					},
				})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s i=%d: status %d: %s", p.name, i, resp.StatusCode, body)
				}
				var rr service.RunResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					t.Fatalf("%s i=%d: unparseable 200: %s", p.name, i, body)
				}
				if rr.Value != wantValue(n) {
					t.Errorf("%s i=%d: value %d, want %d", p.name, i, rr.Value, wantValue(n))
				}
				if rr.Backend != backends[i%2] {
					t.Errorf("%s i=%d: backend %q, want %q through the gate", p.name, i, rr.Backend, backends[i%2])
				}
				if want := policies[(i/2)%2]; rr.Policy != want {
					t.Errorf("%s i=%d: policy %q, want %q through the gate", p.name, i, rr.Policy, want)
				}
			}
		})
	}
}
