//go:build chaos

package gate_test

// Chaos through the gate: the fault matrix fires inside in-process
// backends while traffic arrives via the gate's routing layer, with the
// memory backend and the policy alternating per request. The gate must
// stay a transparent proxy: well-formed statuses, correct values on 200s,
// and no gate-level error substituted for a backend's.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"psgc/internal/fault"
	"psgc/internal/gate"
	"psgc/internal/service"
	"psgc/internal/workload"
)

// TestGateChaosAlternatingBackendsAndPolicies drives mixed traffic through
// the gate under each fault point that must stay invisible at this layer,
// alternating ?backend= between map and arena and ?policy= between static
// and adaptive.
func TestGateChaosAlternatingBackendsAndPolicies(t *testing.T) {
	points := []struct {
		name string
		reg  *fault.Registry
	}{
		{"worker.latency", fault.NewRegistry(201).EnableDelay(fault.WorkerLatency, 1, time.Millisecond)},
		{"machine.stall", fault.NewRegistry(202).EnableDelay(fault.MachineStall, 0.001, time.Millisecond)},
		{"cache.evict", fault.NewRegistry(203).Enable(fault.CacheEvict, 0.8)},
		{"policy.flip", fault.NewRegistry(204).Enable(fault.PolicyFlip, 1)},
	}
	backends := []string{"map", "arena"}
	policies := []string{"static", "adaptive"}
	collectors := []string{"basic", "forwarding", "generational"}

	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			fault.Install(p.reg)
			t.Cleanup(func() { fault.Install(nil) })
			f := startFleet(t, 2, gate.Config{Seed: 7}, service.Config{Workers: 2, QueueDepth: 16})

			for i := 0; i < 12; i++ {
				n := 10 + i%8
				url := f.gateURL + "/run?backend=" + backends[i%2] + "&policy=" + policies[(i/2)%2]
				resp, body := post(t, url, service.RunRequest{
					CompileRequest: service.CompileRequest{
						Source:    workload.AllocHeavySrc(n),
						Collector: collectors[i%3],
					},
				})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s i=%d: status %d: %s", p.name, i, resp.StatusCode, body)
				}
				var rr service.RunResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					t.Fatalf("%s i=%d: unparseable 200: %s", p.name, i, body)
				}
				if rr.Value != wantValue(n) {
					t.Errorf("%s i=%d: value %d, want %d", p.name, i, rr.Value, wantValue(n))
				}
				if rr.Backend != backends[i%2] {
					t.Errorf("%s i=%d: backend %q, want %q through the gate", p.name, i, rr.Backend, backends[i%2])
				}
				if want := policies[(i/2)%2]; rr.Policy != want {
					t.Errorf("%s i=%d: policy %q, want %q through the gate", p.name, i, rr.Policy, want)
				}
			}
		})
	}
}

// TestGateChaosCheckpointMatrix is the PR-10 matrix: E1 traffic through
// the gate over 3 backends while machine.step, worker.panic, and
// checkpoint.corrupt fire — including a mid-matrix backend kill and a
// streamed run migrated off a draining node under the same fault. The
// envelope: no panic escapes the gate (every response is a well-formed
// 200/500, every stream ends in a terminal frame), failover preserves
// results (correct values on every 200 even after the kill), and the
// timeline identities hold on traced 200s.
func TestGateChaosCheckpointMatrix(t *testing.T) {
	points := []struct {
		name string
		reg  *fault.Registry
	}{
		{"machine.step", fault.NewRegistry(301).Enable(fault.MachineStep, 0.002)},
		{"worker.panic", fault.NewRegistry(302).Enable(fault.WorkerPanic, 0.3)},
		{"checkpoint.corrupt", fault.NewRegistry(303).Enable(fault.CheckpointCorrupt, 1)},
	}
	collectors := []string{"basic", "forwarding", "generational"}
	allowed := map[int]bool{http.StatusOK: true, http.StatusInternalServerError: true}

	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			// Every point also slows the machine so the streamed run below
			// is still alive when its backend drains.
			fault.Install(p.reg.EnableDelay(fault.MachineStall, 0.05, 200*time.Microsecond))
			t.Cleanup(func() { fault.Install(nil) })
			f := startFleet(t, 3,
				gate.Config{Seed: 7, HealthEvery: 100 * time.Millisecond, RetryBaseMs: 1},
				service.Config{Workers: 2, QueueDepth: 32})

			capacity := 40
			for i := 0; i < 12; i++ {
				if i == 6 {
					// Failover mid-matrix: one backend dies outright.
					f.backends[0].kill()
				}
				n := 10 + i%8
				url := f.gateURL + "/run"
				traced := i%3 == 0
				if traced {
					url += "?trace=1"
				}
				resp, body := post(t, url, service.RunRequest{
					CompileRequest: service.CompileRequest{
						Source:    workload.AllocHeavySrc(n),
						Collector: collectors[i%3],
					},
					Capacity: &capacity,
				})
				shed := (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) &&
					resp.Header.Get("Retry-After") != ""
				if !allowed[resp.StatusCode] && !shed {
					t.Fatalf("%s i=%d: status %d outside the envelope: %s", p.name, i, resp.StatusCode, body)
				}
				if resp.StatusCode != http.StatusOK {
					continue
				}
				var rr service.RunResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					t.Fatalf("%s i=%d: unparseable 200: %s", p.name, i, body)
				}
				if rr.Value != wantValue(n) {
					t.Errorf("%s i=%d: value %d, want %d", p.name, i, rr.Value, wantValue(n))
				}
				if traced {
					if rr.Trace == nil || rr.Trace.Timeline == nil {
						t.Fatalf("%s i=%d: traced 200 with no timeline", p.name, i)
					}
					tl := rr.Trace.Timeline
					if tl.Steps != rr.Stats.Steps {
						t.Errorf("%s i=%d: timeline steps %d vs stats %d", p.name, i, tl.Steps, rr.Stats.Steps)
					}
					if len(tl.Collections) != rr.Stats.Collections {
						t.Errorf("%s i=%d: %d spans for %d collections", p.name, i, len(tl.Collections), rr.Stats.Collections)
					}
				}
			}

			// A streamed run under the same fault, migrated off a draining
			// survivor. The stream must end in a terminal frame whatever the
			// fault does: a migrated (or fault-500d) run is fine, a hung or
			// truncated stream is not.
			payload, _ := json.Marshal(service.RunRequest{
				CompileRequest: service.CompileRequest{Source: workload.AllocHeavySrc(30), Collector: "forwarding"},
				Capacity:       &capacity,
				ProgressSteps:  100,
			})
			stream, err := http.Post(f.gateURL+"/run?stream=1", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			defer stream.Body.Close()
			if stream.StatusCode != http.StatusOK {
				t.Fatalf("%s: stream status %d", p.name, stream.StatusCode)
			}
			sc := bufio.NewScanner(stream.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
			var serving *backendProc
			terminal := ""
			var terminalData []byte
			for {
				name, data, ok := readEvent(sc)
				if !ok {
					break
				}
				terminal, terminalData = name, data
				if serving == nil && name == "progress" {
					// First boundary reached: find the serving survivor and
					// drain it so the migration machinery runs under the fault.
					for _, b := range f.backends[1:] {
						if b.svc.Metrics().StreamRequests.Load() == 1 {
							serving = b
						}
					}
					if serving != nil {
						go func(b *backendProc) {
							ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
							defer cancel()
							b.svc.Shutdown(ctx)
						}(serving)
					}
				}
			}
			switch terminal {
			case "result":
				var rr service.RunResponse
				if err := json.Unmarshal(terminalData, &rr); err != nil {
					t.Fatalf("%s: unparseable stream result: %s", p.name, terminalData)
				}
				if rr.Value != wantValue(30) {
					t.Errorf("%s: streamed value %d, want %d", p.name, rr.Value, wantValue(30))
				}
			case "error", "checkpointed":
				// Well-formed failure or an unmigrated pause: inside the
				// envelope. checkpoint.corrupt in particular must land here —
				// every resume candidate rejects the tampered blob.
			default:
				t.Fatalf("%s: stream ended without a terminal frame (last %q: %s)", p.name, terminal, terminalData)
			}
			if p.reg.Fired(fault.CheckpointCorrupt) > 0 {
				if terminal != "error" {
					t.Errorf("checkpoint.corrupt stream terminal %q, want error (no resume may accept a tampered blob)", terminal)
				}
				var rejected int64
				for _, b := range f.backends {
					rejected += b.svc.Metrics().ResumesRejected.Load()
				}
				if rejected == 0 {
					t.Error("checkpoint.corrupt: no backend rejected the tampered blob")
				}
				if f.gate.Metrics().MigrationFailures.Load() == 0 {
					t.Error("checkpoint.corrupt: gate reports no migration failure")
				}
			}

			// The fleet survives the whole matrix: faults off, one clean run.
			fault.Install(nil)
			resp, body := post(t, f.gateURL+"/run", service.RunRequest{
				CompileRequest: service.CompileRequest{Source: workload.AllocHeavySrc(15), Collector: "forwarding"},
				Capacity:       &capacity,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: fleet did not survive the matrix: %d (%s)", p.name, resp.StatusCode, body)
			}
			var rr service.RunResponse
			if err := json.Unmarshal(body, &rr); err != nil || rr.Value != wantValue(15) {
				t.Errorf("%s: post-matrix run wrong: %s", p.name, body)
			}
		})
	}
}
