package gate

// POST /batch on the gate: split a batch across the fleet by the same
// cache affinity as single runs, dispatch the per-backend sub-batches
// concurrently, and merge the item results back into input order. A
// backend that dies mid-batch fails only its own sub-batch (after the
// usual failover attempts); the surviving items are unaffected, so the
// merged response is always well-formed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// gateBatchRequest keeps items as raw JSON so the gate neither depends on
// nor restricts the backend's item schema; it peeks only at the affinity
// fields.
type gateBatchRequest struct {
	Items []json.RawMessage `json:"items"`
}

type gateBatchResponse struct {
	Items     []json.RawMessage `json:"items"`
	Completed int               `json:"completed"`
	Failed    int               `json:"failed"`
}

func (g *Gate) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeError(w, http.StatusRequestEntityTooLarge, "request body: "+err.Error())
		return
	}
	var req gateBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		g.writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	g.metrics.BatchRequests.Add(1)
	g.metrics.BatchItems.Add(int64(len(req.Items)))

	// Group item indices by the ring owner of each item's affinity key.
	groups := map[string][]int{}
	keys := make([]string, len(req.Items))
	for i, raw := range req.Items {
		var aff struct {
			Source    string `json:"source"`
			Collector string `json:"collector"`
		}
		if err := json.Unmarshal(raw, &aff); err != nil {
			aff.Source = string(raw)
		}
		keys[i] = affinityKey(aff.Source, aff.Collector)
		g.mu.RLock()
		owner := g.ring.Lookup(keys[i])
		g.mu.RUnlock()
		groups[owner] = append(groups[owner], i)
	}
	if _, empty := groups[""]; empty {
		w.Header().Set("Retry-After", "1")
		g.writeError(w, http.StatusServiceUnavailable, "no healthy backends")
		return
	}

	results := make([]json.RawMessage, len(req.Items))
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			g.dispatchGroup(r, req.Items, keys, idxs, results)
		}(owner, idxs)
	}
	wg.Wait()

	out := gateBatchResponse{Items: results}
	for i, raw := range results {
		var item struct {
			Error json.RawMessage `json:"error"`
		}
		if raw == nil {
			results[i] = batchErrorItem(http.StatusInternalServerError, "gate produced no result for this item")
			out.Failed++
			continue
		}
		if json.Unmarshal(raw, &item) == nil && len(item.Error) > 0 && string(item.Error) != "null" {
			out.Failed++
		} else {
			out.Completed++
		}
	}
	g.writeJSON(w, http.StatusOK, out)
}

// dispatchGroup posts one backend's share of the batch, with the same
// failover chain a single request gets (keyed by the group's first item),
// and scatters the returned items back into results by original index.
func (g *Gate) dispatchGroup(r *http.Request, items []json.RawMessage, keys []string, idxs []int, results []json.RawMessage) {
	sub := gateBatchRequest{Items: make([]json.RawMessage, len(idxs))}
	for i, idx := range idxs {
		sub.Items[i] = items[idx]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		g.failGroup(results, idxs, http.StatusInternalServerError, "marshal sub-batch: "+err.Error())
		return
	}
	candidates := g.candidates(keys[idxs[0]])
	if len(candidates) == 0 {
		g.failGroup(results, idxs, http.StatusServiceUnavailable, "no healthy backends")
		return
	}
	req := r.Clone(r.Context())
	req.Method = http.MethodPost
	req.Header.Set("Content-Type", "application/json")
	resp, backend, err := g.forward(req, "/batch", body, candidates)
	if err != nil {
		g.failGroup(results, idxs, http.StatusServiceUnavailable, "all backends failed: "+err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		g.failGroup(results, idxs, resp.StatusCode,
			fmt.Sprintf("backend %s: %s", backend, bytes.TrimSpace(msg)))
		return
	}
	var subResp gateBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&subResp); err != nil {
		g.failGroup(results, idxs, http.StatusBadGateway, "backend "+backend+": undecodable batch response: "+err.Error())
		return
	}
	if len(subResp.Items) != len(idxs) {
		g.failGroup(results, idxs, http.StatusBadGateway,
			fmt.Sprintf("backend %s returned %d items for %d", backend, len(subResp.Items), len(idxs)))
		return
	}
	g.metrics.BatchSplits.Add(backend, int64(len(idxs)))
	for i, idx := range idxs {
		results[idx] = subResp.Items[i]
	}
}

// failGroup fills every index of a failed sub-batch with an error item in
// the backend's item shape, so clients see one uniform schema.
func (g *Gate) failGroup(results []json.RawMessage, idxs []int, status int, msg string) {
	item := batchErrorItem(status, msg)
	for _, idx := range idxs {
		results[idx] = item
	}
}

func batchErrorItem(status int, msg string) json.RawMessage {
	raw, _ := json.Marshal(map[string]any{
		"status": status,
		"error":  map[string]string{"error": msg},
	})
	return raw
}
