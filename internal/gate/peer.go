package gate

// GET /peer/fetch?hash=<hex sha256>&collector=<name>&exclude=<self>
//
// The gate side of the fleet's shared compiled-program cache tier. A
// backend that misses its local cache asks here before compiling; the gate
// walks the other backends' /cache/export endpoints in ring order from the
// key's owner — the node most likely to hold the entry after a rebalance —
// and streams back the first hit. A fleet-wide miss is a 404, and the
// backend compiles as it would have anyway: this tier can only save work,
// never add failure modes (the importing backend re-certifies whatever it
// receives).

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"time"
)

func (g *Gate) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		g.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	hash, colName, exclude := q.Get("hash"), q.Get("collector"), q.Get("exclude")
	if hash == "" {
		g.writeError(w, http.StatusBadRequest, "missing hash")
		return
	}

	// Ask every ring member except the requester, owner-first. The
	// candidate list is the full ring here (not RetryMax): a peer fetch is
	// one cheap GET per node, and any hit beats a compile.
	g.mu.RLock()
	candidates := g.ring.Successors(hash+"|"+colName, g.ring.Len())
	g.mu.RUnlock()

	exportQ := url.Values{}
	exportQ.Set("hash", hash)
	exportQ.Set("collector", colName)
	for _, base := range candidates {
		if base == exclude {
			continue
		}
		if g.servePeerExport(w, r.Context(), base, exportQ.Encode()) {
			g.metrics.PeerHits.Add(1)
			return
		}
	}
	// Fleet-wide miss: somebody has to compile. The singleflight makes it
	// exactly one somebody — the first requester is designated owner (404,
	// it compiles as usual); requesters arriving while that compile is in
	// flight wait for the owner's cache to fill instead of compiling too.
	key := hash + "|" + colName
	if owner := g.compileOwner(key, exclude); owner != "" {
		if g.waitForCompile(w, r.Context(), owner, exportQ.Encode(), key) {
			return
		}
	}
	g.metrics.PeerMisses.Add(1)
	g.writeError(w, http.StatusNotFound, "no peer holds that entry")
}

const (
	// compileOwnerTTL bounds how long a designation can pin followers to a
	// possibly-crashed owner.
	compileOwnerTTL = 30 * time.Second
	// compilePollEvery / compilePollMax pace a follower's wait: ~800ms of
	// polling before it gives up and compiles anyway. The singleflight can
	// only save work, never add a failure mode.
	compilePollEvery = 100 * time.Millisecond
	compilePollMax   = 8
)

// compileOwner implements the fleet compile singleflight. The first miss
// for a key designates its requester as the owner and returns "" (that
// node compiles); later misses get the owner's URL to poll. An anonymous
// requester (no exclude=self) can be neither owner nor follower — there
// is no address to poll.
func (g *Gate) compileOwner(key, requester string) string {
	g.sfMu.Lock()
	defer g.sfMu.Unlock()
	if owner, ok := g.compiling[key]; ok && owner != requester {
		return owner
	}
	if requester == "" {
		return ""
	}
	if _, ok := g.compiling[key]; !ok {
		g.compiling[key] = requester
		time.AfterFunc(compileOwnerTTL, func() {
			g.sfMu.Lock()
			if g.compiling[key] == requester {
				delete(g.compiling, key)
			}
			g.sfMu.Unlock()
		})
	}
	return ""
}

// waitForCompile polls the designated owner's cache until its in-flight
// compile lands, then streams the entry to the requester.
func (g *Gate) waitForCompile(w http.ResponseWriter, ctx context.Context, owner, query, key string) bool {
	for attempt := 0; attempt < compilePollMax; attempt++ {
		select {
		case <-time.After(compilePollEvery):
		case <-ctx.Done():
			return false
		}
		if g.servePeerExport(w, ctx, owner, query) {
			g.metrics.CompileCoalesced.Add(1)
			g.sfMu.Lock()
			delete(g.compiling, key)
			g.sfMu.Unlock()
			return true
		}
	}
	return false
}

// servePeerExport fetches one backend's /cache/export and, on a hit,
// streams it to the requester. Reports whether the response was served.
func (g *Gate) servePeerExport(w http.ResponseWriter, ctx context.Context, base, query string) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cache/export?"+query, nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	g.metrics.BackendRequests.Add(base, 1)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	g.metrics.countOutcome(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Psgc-Peer", base)
	w.WriteHeader(http.StatusOK)
	io.Copy(w, resp.Body)
	return true
}
