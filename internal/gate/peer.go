package gate

// GET /peer/fetch?hash=<hex sha256>&collector=<name>&exclude=<self>
//
// The gate side of the fleet's shared compiled-program cache tier. A
// backend that misses its local cache asks here before compiling; the gate
// walks the other backends' /cache/export endpoints in ring order from the
// key's owner — the node most likely to hold the entry after a rebalance —
// and streams back the first hit. A fleet-wide miss is a 404, and the
// backend compiles as it would have anyway: this tier can only save work,
// never add failure modes (the importing backend re-certifies whatever it
// receives).

import (
	"context"
	"io"
	"net/http"
	"net/url"
)

func (g *Gate) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		g.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	hash, colName, exclude := q.Get("hash"), q.Get("collector"), q.Get("exclude")
	if hash == "" {
		g.writeError(w, http.StatusBadRequest, "missing hash")
		return
	}

	// Ask every ring member except the requester, owner-first. The
	// candidate list is the full ring here (not RetryMax): a peer fetch is
	// one cheap GET per node, and any hit beats a compile.
	g.mu.RLock()
	candidates := g.ring.Successors(hash+"|"+colName, g.ring.Len())
	g.mu.RUnlock()

	exportQ := url.Values{}
	exportQ.Set("hash", hash)
	exportQ.Set("collector", colName)
	for _, base := range candidates {
		if base == exclude {
			continue
		}
		if g.servePeerExport(w, r.Context(), base, exportQ.Encode()) {
			g.metrics.PeerHits.Add(1)
			return
		}
	}
	g.metrics.PeerMisses.Add(1)
	g.writeError(w, http.StatusNotFound, "no peer holds that entry")
}

// servePeerExport fetches one backend's /cache/export and, on a hit,
// streams it to the requester. Reports whether the response was served.
func (g *Gate) servePeerExport(w http.ResponseWriter, ctx context.Context, base, query string) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cache/export?"+query, nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	g.metrics.BackendRequests.Add(base, 1)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	g.metrics.countOutcome(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Psgc-Peer", base)
	w.WriteHeader(http.StatusOK)
	io.Copy(w, resp.Body)
	return true
}
