package gate

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"psgc/internal/obs"
)

// Metrics is the gate's registry: where requests went, how often the ring
// moved, and how well the fleet's peer cache tier is doing.
type Metrics struct {
	// BackendRequests counts proxied requests per backend (including
	// sub-batches and peer-export fetches), the shard-balance signal.
	BackendRequests obs.LabeledCounter
	// Retries counts failover attempts past the first candidate.
	Retries atomic.Int64
	// Rebalances counts ring membership changes (degrade or return).
	Rebalances atomic.Int64

	// PeerHits and PeerMisses count /peer/fetch outcomes: a hit means some
	// backend's compile was reused across the fleet. CompileCoalesced
	// counts fetches served by waiting out another node's in-flight compile
	// (the gate-level singleflight) instead of compiling again.
	PeerHits         atomic.Int64
	PeerMisses       atomic.Int64
	CompileCoalesced atomic.Int64

	// Migrations counts streaming runs moved off a degrading backend via
	// snapshot/resume; MigrationFailures counts runs that checkpointed but
	// could not be resumed anywhere (their streams end in an error event).
	Migrations        atomic.Int64
	MigrationFailures atomic.Int64

	// BatchRequests and BatchItems count /batch traffic; BatchSplits
	// counts items per backend after the affinity split.
	BatchRequests atomic.Int64
	BatchItems    atomic.Int64
	BatchSplits   obs.LabeledCounter

	// Outcome classes of gate responses.
	OK           atomic.Int64
	ClientErrors atomic.Int64
	ServerErrors atomic.Int64
}

func (m *Metrics) countOutcome(status int) {
	switch {
	case status < 400:
		m.OK.Add(1)
	case status < 500:
		m.ClientErrors.Add(1)
	default:
		m.ServerErrors.Add(1)
	}
}

// PeerHitRatio reports hits/(hits+misses), 0 when idle.
func (m *Metrics) PeerHitRatio() float64 {
	h, mi := m.PeerHits.Load(), m.PeerMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// Snapshot renders the registry as JSON-encodable state.
func (m *Metrics) Snapshot() map[string]any {
	return map[string]any{
		"backend_requests": m.BackendRequests.Snapshot(),
		"retries":          m.Retries.Load(),
		"ring_rebalances":  m.Rebalances.Load(),
		"peer_cache": map[string]any{
			"hits":              m.PeerHits.Load(),
			"misses":            m.PeerMisses.Load(),
			"hit_ratio":         m.PeerHitRatio(),
			"compile_coalesced": m.CompileCoalesced.Load(),
		},
		"migrations": map[string]int64{
			"completed": m.Migrations.Load(),
			"failed":    m.MigrationFailures.Load(),
		},
		"batch": map[string]any{
			"requests": m.BatchRequests.Load(),
			"items":    m.BatchItems.Load(),
			"splits":   m.BatchSplits.Snapshot(),
		},
		"outcomes": map[string]int64{
			"ok":            m.OK.Load(),
			"client_errors": m.ClientErrors.Load(),
			"server_errors": m.ServerErrors.Load(),
		},
	}
}

// WritePrometheus renders the registry in the text exposition format.
func (m *Metrics) WritePrometheus(w *obs.PromWriter, backendStates map[string]string) {
	w.Counter("psgc_gate_backend_requests_total",
		"Requests the gate proxied, by backend.",
		m.BackendRequests.Samples("backend")...)
	w.Counter("psgc_gate_retries_total",
		"Failover attempts past the first ring candidate.",
		obs.Sample{Value: float64(m.Retries.Load())})
	w.Counter("psgc_gate_ring_rebalances_total",
		"Consistent-hash ring membership changes.",
		obs.Sample{Value: float64(m.Rebalances.Load())})
	w.Counter("psgc_gate_peer_fetch_total",
		"Peer cache tier fetches through the gate, by outcome.",
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "hit"}}, Value: float64(m.PeerHits.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "event", Value: "miss"}}, Value: float64(m.PeerMisses.Load())})
	w.Gauge("psgc_gate_peer_hit_ratio",
		"Fraction of peer fetches that found a compiled entry.",
		obs.Sample{Value: m.PeerHitRatio()})
	w.Counter("psgc_gate_compile_coalesced_total",
		"Peer fetches served by waiting out another node's in-flight compile.",
		obs.Sample{Value: float64(m.CompileCoalesced.Load())})
	w.Counter("psgc_gate_migrations_total",
		"Streaming runs moved between backends via snapshot/resume, by outcome.",
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "completed"}}, Value: float64(m.Migrations.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "outcome", Value: "failed"}}, Value: float64(m.MigrationFailures.Load())})
	w.Counter("psgc_gate_batch_requests_total",
		"Batch requests accepted by the gate.",
		obs.Sample{Value: float64(m.BatchRequests.Load())})
	w.Counter("psgc_gate_batch_items_total",
		"Batch items split across the fleet.",
		obs.Sample{Value: float64(m.BatchItems.Load())})
	w.Counter("psgc_gate_requests_total",
		"Gate responses by outcome class.",
		obs.Sample{Labels: []obs.Label{{Name: "code", Value: "ok"}}, Value: float64(m.OK.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "code", Value: "client_error"}}, Value: float64(m.ClientErrors.Load())},
		obs.Sample{Labels: []obs.Label{{Name: "code", Value: "server_error"}}, Value: float64(m.ServerErrors.Load())})
	states := make([]obs.Sample, 0, len(backendStates))
	for _, b := range sortedKeys(backendStates) {
		v := 0.0
		if backendStates[b] == "up" {
			v = 1
		}
		states = append(states, obs.Sample{Labels: []obs.Label{{Name: "backend", Value: b}, {Name: "state", Value: backendStates[b]}}, Value: v})
	}
	w.Gauge("psgc_gate_backend_up",
		"1 for backends currently in the ring as healthy, 0 otherwise.", states...)
}

// writeBackendPolicy renders the per-backend adaptive-policy gauges the
// health loop scraped. Values are the backends' own counters re-exported
// by the gate (gauges here: the gate samples, it does not accumulate).
func writeBackendPolicy(w *obs.PromWriter, policies map[string]backendPolicy) {
	keys := make(map[string]string, len(policies))
	for b, p := range policies {
		keys[b] = p.DefaultPolicy
	}
	runs := make([]obs.Sample, 0, len(policies))
	profiles := make([]obs.Sample, 0, len(policies))
	decisions := make([]obs.Sample, 0, len(policies))
	flips := make([]obs.Sample, 0, len(policies))
	for _, b := range sortedKeys(keys) {
		p := policies[b]
		label := []obs.Label{{Name: "backend", Value: b}}
		runs = append(runs, obs.Sample{Labels: label, Value: p.ProfiledRuns})
		profiles = append(profiles, obs.Sample{Labels: label, Value: p.Profiles})
		decisions = append(decisions, obs.Sample{Labels: label, Value: p.Decisions})
		flips = append(flips, obs.Sample{Labels: label, Value: p.Flips})
	}
	w.Gauge("psgc_gate_backend_profiled_runs",
		"Completed runs each backend has folded into its profile store (scraped).", runs...)
	w.Gauge("psgc_gate_backend_profiles",
		"Program hashes each backend's profile store holds (scraped).", profiles...)
	w.Gauge("psgc_gate_backend_policy_decisions",
		"Adaptive policy decisions each backend has made (scraped).", decisions...)
	w.Gauge("psgc_gate_backend_policy_flips",
		"Decisions perturbed by the policy.flip fault, per backend (scraped).", flips...)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Small fleets; insertion sort keeps the import list short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// backendStates snapshots the health map.
func (g *Gate) backendStates() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string, len(g.backends))
	for url, st := range g.backends {
		out[url] = st.state
	}
	return out
}

// backendPolicies snapshots the scraped per-backend policy surfaces.
func (g *Gate) backendPolicies() map[string]backendPolicy {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]backendPolicy, len(g.backends))
	for url, st := range g.backends {
		out[url] = st.policy
	}
	return out
}

// handleHealthz reports the gate's own view of the fleet.
func (g *Gate) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	ringNodes := g.ring.Nodes()
	backends := make(map[string]any, len(g.backends))
	for url, st := range g.backends {
		b := map[string]any{"state": st.state, "checks": st.checks}
		if st.lastErr != "" {
			b["last_error"] = st.lastErr
		}
		if st.policy.DefaultPolicy != "" {
			b["policy"] = st.policy
		}
		backends[url] = b
	}
	g.mu.RUnlock()
	status := "ok"
	if len(ringNodes) == 0 {
		status = "no_backends"
	}
	body := map[string]any{
		"status":          status,
		"uptime_ms":       time.Since(g.start).Milliseconds(),
		"seed":            g.cfg.Seed,
		"vnodes":          g.cfg.VNodes,
		"ring":            ringNodes,
		"ring_rebalances": g.metrics.Rebalances.Load(),
		"backends":        backends,
		"peer_hit_ratio":  g.metrics.PeerHitRatio(),
	}
	code := http.StatusOK
	if status != "ok" {
		code = http.StatusServiceUnavailable
	}
	g.writeJSON(w, code, body)
}

func (g *Gate) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	prom := strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		prom = true
	case "json":
		prom = false
	}
	if prom {
		g.metrics.countOutcome(http.StatusOK)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		pw := obs.NewPromWriter(w)
		g.metrics.WritePrometheus(pw, g.backendStates())
		writeBackendPolicy(pw, g.backendPolicies())
		return
	}
	snap := g.metrics.Snapshot()
	snap["backend_policy"] = g.backendPolicies()
	g.writeJSON(w, http.StatusOK, snap)
}

func (g *Gate) writeJSON(w http.ResponseWriter, status int, body any) {
	g.metrics.countOutcome(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
