// Package psgc is a Go reproduction of "Principled Scavenging" (Monnier,
// Saha, Shao; PLDI 2001): provably type-safe stop-and-copy garbage
// collectors built from a region calculus plus intensional type analysis.
//
// The package compiles a simply-typed functional source language through
// CPS conversion and typed closure conversion into λCLOS, then translates
// it into the region-and-tag language λGC, linking it against one of three
// collectors written as λGC terms and verified by λGC's own typechecker:
//
//	Basic        — the stop-and-copy collector of Fig. 12
//	Forwarding   — the sharing-preserving collector of Fig. 9 (λGCforw)
//	Generational — the minor/major collector pair of Fig. 11/§8 (λGCgen)
//
// Programs run on an abstract machine implementing the paper's allocation
// semantics over explicit regions; Run reports the observable result plus
// memory and collection statistics. Ghost mode additionally maintains the
// memory type Ψ and re-checks machine-state well-formedness after every
// step — the executable counterpart of the paper's type-preservation
// theorem.
package psgc

import (
	"errors"
	"fmt"

	"psgc/internal/clos"
	"psgc/internal/closconv"
	"psgc/internal/collector"
	"psgc/internal/cps"
	"psgc/internal/fault"
	"psgc/internal/gclang"
	"psgc/internal/obs"
	"psgc/internal/policy"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/translate"
)

// Collector selects which type-safe collector the program is linked with.
type Collector int

// The three collectors of the paper.
const (
	Basic Collector = iota
	Forwarding
	Generational
)

func (c Collector) String() string {
	switch c {
	case Basic:
		return "basic"
	case Forwarding:
		return "forwarding"
	case Generational:
		return "generational"
	default:
		return fmt.Sprintf("Collector(%d)", int(c))
	}
}

// Dialect returns the λGC dialect the collector is written in.
func (c Collector) Dialect() gclang.Dialect {
	switch c {
	case Forwarding:
		return gclang.Forw
	case Generational:
		return gclang.Gen
	default:
		return gclang.Base
	}
}

// Compiled is a λGC program linked with a collector, ready to run.
//
// A Compiled is immutable after CompileProgram returns: Run loads the
// program into a fresh machine with its own memory, so one Compiled may be
// run from many goroutines concurrently (the service's compiled-program
// cache relies on this).
type Compiled struct {
	Collector Collector
	// Prog is the elaborated (typechecked) λGC program.
	Prog gclang.Program
	// Source and Clos expose the intermediate programs for inspection.
	Source source.Program
	Clos   clos.Program

	entries map[regions.Addr]bool
	// entryNames names each entry point ("gc", or "minor"/"major") and
	// collectorFuns is the cd prefix holding the certified collector code;
	// both seed the GC-event Recorder.
	entryNames    map[regions.Addr]string
	collectorFuns int
}

// Compile parses, typechecks and compiles a source program, linking it
// with the chosen collector. The resulting λGC program — collector
// included — is verified by the λGC typechecker; a failure there is a bug
// in this library, never in the user program.
func Compile(src string, col Collector) (*Compiled, error) {
	c, _, err := CompileTraced(src, col)
	return c, err
}

// CompileTraced is Compile with per-phase wall-clock spans: parse, cps,
// closconv, collector (the verified-collector cache lookup), translate,
// and typecheck. Spans are returned even when compilation fails, covering
// the phases that ran.
func CompileTraced(src string, col Collector) (*Compiled, []obs.PhaseSpan, error) {
	pl := obs.NewPipeline()
	end := pl.Phase("parse")
	p, err := source.Parse(src)
	end()
	if err != nil {
		return nil, pl.Spans(), err
	}
	c, err := compileProgram(p, col, pl)
	return c, pl.Spans(), err
}

// CompileProgram is Compile for an already parsed source program.
//
// The collector the program is linked against comes from the process-wide
// verified-collector cache: each dialect's collector terms are built and
// certified by the λGC typechecker exactly once per process (collector.Load)
// and shared by every compile, so only the mutator's own code blocks are
// checked here. CompileProgram is safe for concurrent use.
func CompileProgram(p source.Program, col Collector) (*Compiled, error) {
	return compileProgram(p, col, nil)
}

// CompileProgramTraced is CompileProgram with per-phase spans (everything
// after parsing; see CompileTraced).
func CompileProgramTraced(p source.Program, col Collector) (*Compiled, []obs.PhaseSpan, error) {
	pl := obs.NewPipeline()
	c, err := compileProgram(p, col, pl)
	return c, pl.Spans(), err
}

func compileProgram(p source.Program, col Collector, pl *obs.Pipeline) (*Compiled, error) {
	if fault.Should(fault.CompileParse) {
		return nil, fmt.Errorf("psgc: %w in compile pipeline", fault.ErrInjected)
	}
	if col < Basic || col > Generational {
		return nil, fmt.Errorf("psgc: unknown collector %v", col)
	}
	end := pl.Phase("cps")
	cp, err := cps.Convert(p)
	end()
	if err != nil {
		return nil, err
	}
	end = pl.Phase("closconv")
	lp, err := closconv.Convert(cp)
	end()
	if err != nil {
		return nil, err
	}
	end = pl.Phase("collector")
	v, err := collector.Load(col.Dialect())
	end()
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: %w", err)
	}
	l := v.NewLayout()
	opts := translate.Options{Dialect: col.Dialect(), GC: v.GC, Minor: v.Minor, Major: v.Major}
	entries := map[regions.Addr]bool{}
	for _, a := range v.Entries {
		entries[a] = true
	}
	entryNames := map[regions.Addr]string{}
	if col == Generational {
		entryNames[v.Minor.Addr] = "minor"
		entryNames[v.Major.Addr] = "major"
	} else {
		entryNames[v.GC.Addr] = "gc"
	}
	end = pl.Phase("translate")
	gp, err := translate.Translate(lp, l, opts)
	end()
	if err != nil {
		return nil, err
	}
	end = pl.Phase("typecheck")
	checker := &gclang.Checker{Dialect: col.Dialect()}
	elab, _, err := checker.CheckProgramPrefix(gp, len(v.Funs))
	end()
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: compiled program does not typecheck: %w", err)
	}
	return &Compiled{
		Collector: col, Prog: elab, Source: p, Clos: lp,
		entries: entries, entryNames: entryNames, collectorFuns: len(v.Funs),
	}, nil
}

// compileProgramCold is the uncached compile path: it rebuilds and
// re-typechecks the collector alongside the mutator, exactly as every
// compile did before the verified-collector cache existed. It is kept as
// the baseline for BenchmarkCompileCold and the cache-equivalence test.
func compileProgramCold(p source.Program, col Collector) (*Compiled, error) {
	cp, err := cps.Convert(p)
	if err != nil {
		return nil, err
	}
	lp, err := closconv.Convert(cp)
	if err != nil {
		return nil, err
	}
	l := &collector.Layout{}
	opts := translate.Options{Dialect: col.Dialect()}
	entries := map[regions.Addr]bool{}
	entryNames := map[regions.Addr]string{}
	switch col {
	case Basic:
		b := collector.BuildBasic(l)
		opts.GC = l.Addr(b.GC)
		entries[opts.GC.Addr] = true
		entryNames[opts.GC.Addr] = "gc"
	case Forwarding:
		f := collector.BuildForw(l)
		opts.GC = l.Addr(f.GC)
		entries[opts.GC.Addr] = true
		entryNames[opts.GC.Addr] = "gc"
	case Generational:
		g := collector.BuildGen(l)
		opts.Minor = l.Addr(g.Minor)
		opts.Major = l.Addr(g.Major)
		entries[opts.Minor.Addr] = true
		entries[opts.Major.Addr] = true
		entryNames[opts.Minor.Addr] = "minor"
		entryNames[opts.Major.Addr] = "major"
	default:
		return nil, fmt.Errorf("psgc: unknown collector %v", col)
	}
	collectorFuns := len(l.Funs)
	gp, err := translate.Translate(lp, l, opts)
	if err != nil {
		return nil, err
	}
	checker := &gclang.Checker{Dialect: col.Dialect()}
	elab, _, err := checker.CheckProgram(gp)
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: compiled program does not typecheck: %w", err)
	}
	return &Compiled{
		Collector: col, Prog: elab, Source: p, Clos: lp,
		entries: entries, entryNames: entryNames, collectorFuns: collectorFuns,
	}, nil
}

// Engine selects which λGC abstract machine Run uses. Both machines are
// observationally equivalent — same results, step counts, memory effects,
// and trace classification (internal/gclang's differential test co-steps
// them) — but the environment machine avoids the substitution machine's
// per-step term rewriting and is several times faster.
type Engine int

const (
	// EngineEnv is the environment-based machine (gclang.EnvMachine), the
	// default: variables resolve through environments and stepping is
	// allocation-free in the steady state.
	EngineEnv Engine = iota
	// EngineSubst is the substitution-based machine of Fig. 5
	// (gclang.Machine), kept as the semantic oracle. Ghost mode and
	// CheckEveryStep always run on it: the ghost memory type Ψ lives there.
	EngineSubst
)

func (e Engine) String() string {
	switch e {
	case EngineEnv:
		return "env"
	case EngineSubst:
		return "subst"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name: "env" (or empty) and "subst".
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "env":
		return EngineEnv, nil
	case "subst":
		return EngineSubst, nil
	default:
		return 0, fmt.Errorf("psgc: unknown engine %q (want env or subst)", s)
	}
}

// RunOptions configures an execution.
type RunOptions struct {
	// Capacity is the per-region cell count at which ifgc reports a
	// region full and a collection is triggered. Zero disables collection
	// entirely (regions never fill).
	Capacity int
	// FixedCapacity disables the survivor-driven heap growth policy.
	// With a fixed capacity, a program whose live set reaches the
	// capacity collects at every function entry and may never finish —
	// useful only for experiments that control live size.
	FixedCapacity bool
	// Fuel bounds the number of machine steps (default 50 million).
	Fuel int
	// Ghost maintains the memory type Ψ during execution, enabling
	// CheckEveryStep and post-mortem state inspection. Slower.
	Ghost bool
	// CheckEveryStep re-verifies machine-state well-formedness after
	// every transition (requires Ghost). Very slow; used by the
	// soundness test-suite.
	CheckEveryStep bool
	// Recorder, if non-nil, captures a structured GC-event timeline
	// during the run (create one with Compiled.Recorder; read it with
	// Recorder.Timeline afterwards). One Recorder serves one run.
	Recorder *obs.Recorder
	// Profiler, if non-nil, accumulates an allocation-free run profile
	// (create one with Compiled.Profiler; read it with Profiler.Profile
	// afterwards). Unlike the Recorder it is cheap enough to leave on for
	// every run. One Profiler serves one run. Under CoCheck it observes
	// the oracle, whose result is the one served.
	Profiler *obs.Profiler
	// Policy names the selection policy that configured this run: "" or
	// policy.Static for an explicit collector and capacity, policy.Adaptive
	// when the profile-driven engine chose them. With policy.Adaptive and a
	// non-nil Decision, Run cross-checks the compiled-in collector against
	// the decision (catching callers that decide one collector and compile
	// another) and adopts the decision's capacity when Capacity is zero.
	// Unknown names are an error.
	Policy string
	// Decision is the policy decision backing Policy == policy.Adaptive.
	Decision *policy.Decision
	// Progress, if non-nil, is called every ProgressEvery steps and at
	// every collector entry. Returning false cancels the run: Run returns
	// ErrCanceled with the partial Result.
	Progress func(Progress) bool
	// ProgressEvery is the Progress cadence in machine steps
	// (default DefaultProgressEvery).
	ProgressEvery int
	// Engine selects the abstract machine (default EngineEnv). Ghost and
	// CheckEveryStep force EngineSubst regardless.
	Engine Engine
	// CoCheck steps the environment machine in lockstep with the
	// substitution oracle, comparing pending collector calls, step counts,
	// memory counters every step, and the final value plus the full heap at
	// halt. On a disagreement OnDivergence fires and the run falls back to
	// the oracle alone; the returned Result is always the oracle's, so a
	// co-checked run is never wrong — only slower. Ignored when the run is
	// already on the substitution machine (EngineSubst/Ghost/CheckEveryStep).
	CoCheck bool
	// OnDivergence, if non-nil, is invoked at most once per co-checked run
	// with the first observed divergence.
	OnDivergence func(Divergence)
	// Backend selects the memory substrate (default regions.BackendMap).
	// The co-checker's substitution oracle always runs on the map backend
	// regardless, so a co-checked arena run validates the arena cell by
	// cell against the reference implementation.
	Backend regions.Backend
	// WrapStore, if non-nil, replaces the machine's memory substrate with
	// its return value just after construction. The benchmark harness uses
	// it to interpose regions.NewTrace and record the run's exact op
	// sequence; the wrapper must preserve observable store behavior. The
	// co-checker's oracle is never wrapped, and the boxed baseline
	// (RunBoxed) ignores it — its store carries boxed Values, not Cells.
	WrapStore func(regions.Store[gclang.Cell]) regions.Store[gclang.Cell]
	// CheckpointEvery, if > 0, captures a checkpoint every CheckpointEvery
	// machine steps and hands it to OnCheckpoint (which is then required).
	// Checkpoints are only ever taken at step boundaries — never
	// mid-transition, so never mid-scavenge: a collection in flight simply
	// finishes its current step like any other.
	CheckpointEvery int
	// OnCheckpoint receives periodic checkpoints (see CheckpointEvery).
	// Returning false stops the run: Run returns ErrCheckpointed with the
	// partial Result. Returning true continues it.
	OnCheckpoint func(*Checkpoint) bool
	// Checkpointer, if non-nil, lets another goroutine pause this run on
	// demand: after Checkpointer.Request the run captures a checkpoint at
	// its next step boundary, delivers it on Checkpointer.Checkpoints, and
	// stops with ErrCheckpointed.
	Checkpointer *Checkpointer
	// ResumeFrom resumes the given checkpoint instead of starting fresh.
	// Most callers use Checkpoint.Resume, which sets this. The checkpoint
	// dictates the engine; Backend is honored (cross-backend migration);
	// capacity and growth policy come from the heap image; a zero Fuel
	// inherits the checkpoint's remaining fuel. Ghost, CheckEveryStep, and
	// WrapStore are incompatible with resuming.
	ResumeFrom *Checkpoint
	// CheckpointMeta is stamped into every checkpoint captured from this
	// run (it does not affect execution).
	CheckpointMeta CheckpointMeta
}

// Progress is a point-in-time execution snapshot delivered to
// RunOptions.Progress (and streamed over SSE by the service).
type Progress struct {
	Steps       int `json:"steps"`
	Collections int `json:"collections"`
	LiveCells   int `json:"live_cells"`
}

// DefaultProgressEvery is the default Progress cadence in machine steps.
const DefaultProgressEvery = 50_000

// Result reports an execution's outcome.
type Result struct {
	// Value is the program's integer result.
	Value int
	// Steps is the number of machine transitions taken.
	Steps int
	// Collections is the number of collector invocations (minor and
	// major both count for the generational collector).
	Collections int
	// Stats are the memory-traffic counters.
	Stats regions.Stats
	// LiveCells is the number of live non-code cells at halt.
	LiveCells int
}

// DefaultFuel is the default machine step budget.
const DefaultFuel = 50_000_000

// ErrOutOfFuel is returned (wrapped) by Run when the step budget is
// exhausted before the program halts. The accompanying Result is still
// populated with the partial execution's steps, collections, and memory
// statistics, so callers enforcing deadlines via fuel budgets can report
// what the program did before it was cut off.
var ErrOutOfFuel = errors.New("psgc: out of fuel")

// ErrCanceled is returned (wrapped) by Run when a Progress callback
// returns false. The accompanying Result carries the partial execution's
// statistics, like ErrOutOfFuel.
var ErrCanceled = errors.New("psgc: run canceled")

// NewMachine loads the compiled program into a fresh machine. Most
// callers want Run; NewMachine is for stepping or inspecting states.
func (c *Compiled) NewMachine(opts RunOptions) *gclang.Machine {
	m := gclang.NewMachineOn(opts.Backend, c.Collector.Dialect(), c.Prog, opts.Capacity)
	m.Mem.SetAutoGrow(!opts.FixedCapacity)
	if opts.WrapStore != nil {
		m.Mem = opts.WrapStore(m.Mem)
	}
	m.Ghost = opts.Ghost || opts.CheckEveryStep
	return m
}

// NewEnvMachine loads the compiled program into a fresh environment
// machine (the default Run engine). Ghost mode is not available on it; use
// NewMachine for stepping with Ψ.
func (c *Compiled) NewEnvMachine(opts RunOptions) *gclang.EnvMachine {
	m := gclang.NewEnvMachineOn(opts.Backend, c.Collector.Dialect(), c.Prog, opts.Capacity)
	m.Mem.SetAutoGrow(!opts.FixedCapacity)
	if opts.WrapStore != nil {
		m.Mem = opts.WrapStore(m.Mem)
	}
	return m
}

// Recorder returns a GC-event recorder wired to this program's collector
// entry points and certified code prefix. Pass it in RunOptions.Recorder
// (one recorder per run) and read Recorder.Timeline after Run returns.
func (c *Compiled) Recorder() *obs.Recorder {
	return obs.NewRecorder(c.entryNames, c.collectorFuns)
}

// Profiler returns an allocation-free run profiler wired to this program's
// collector entry points and certified code prefix. Pass it in
// RunOptions.Profiler (one profiler per run) and read Profiler.Profile
// after Run returns.
func (c *Compiled) Profiler() *obs.Profiler {
	return obs.NewProfiler(c.entryNames, c.collectorFuns)
}

// applyPolicy validates opts.Policy and, for an adaptive run backed by a
// Decision, cross-checks the compiled collector and adopts the decided
// capacity.
func (c *Compiled) applyPolicy(opts *RunOptions) error {
	name, err := policy.Parse(opts.Policy)
	if err != nil {
		return fmt.Errorf("psgc: %w", err)
	}
	if name != policy.Adaptive || opts.Decision == nil {
		return nil
	}
	d := opts.Decision
	if d.Collector != "" && d.Collector != c.Collector.String() {
		return fmt.Errorf("psgc: adaptive decision chose collector %q but program is compiled with %q",
			d.Collector, c.Collector)
	}
	if opts.Capacity == 0 && d.Capacity > 0 {
		opts.Capacity = d.Capacity
	}
	return nil
}

// Run executes the compiled program. If the fuel budget runs out the
// returned error wraps ErrOutOfFuel and the Result still carries the
// partial execution's statistics.
//
// The engine is opts.Engine (environment machine by default); Ghost and
// CheckEveryStep force the substitution machine, which carries the ghost Ψ.
func (c *Compiled) Run(opts RunOptions) (Result, error) {
	if err := c.applyPolicy(&opts); err != nil {
		return Result{}, err
	}
	if opts.CheckpointEvery > 0 && opts.OnCheckpoint == nil {
		return Result{}, errors.New("psgc: CheckpointEvery requires OnCheckpoint")
	}
	if (opts.CheckpointEvery > 0 || opts.Checkpointer != nil) && (opts.Ghost || opts.CheckEveryStep) {
		return Result{}, errors.New("psgc: checkpointing is not supported in ghost mode")
	}
	if ck := opts.ResumeFrom; ck != nil {
		if ck.compiled != c {
			return Result{}, errors.New("psgc: checkpoint belongs to a different compiled program (use Checkpoint.Resume)")
		}
		if opts.Ghost || opts.CheckEveryStep {
			return Result{}, errors.New("psgc: cannot resume a checkpoint into ghost mode")
		}
		if opts.WrapStore != nil {
			return Result{}, errors.New("psgc: WrapStore is not supported on resume")
		}
		// The checkpoint dictates the engine: a subst image resumes on the
		// substitution machine, an env image on the environment machine
		// (co-checked if opts.CoCheck, with the oracle rebuilt from the
		// same image).
		opts.Engine = ck.Engine
		if opts.Fuel == 0 && ck.FuelRemaining > 0 {
			opts.Fuel = ck.FuelRemaining
		}
	}
	if opts.Engine == EngineSubst || opts.Ghost || opts.CheckEveryStep {
		return c.runSubst(opts)
	}
	if opts.CoCheck {
		return c.runCoChecked(opts)
	}
	return c.runEnv(opts)
}

func runBudgets(opts RunOptions) (fuel, every int) {
	fuel = opts.Fuel
	if fuel == 0 {
		fuel = DefaultFuel
	}
	every = opts.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	return fuel, every
}

func (c *Compiled) runSubst(opts RunOptions) (Result, error) {
	var m *gclang.Machine
	collections := 0
	if ck := opts.ResumeFrom; ck != nil {
		var err error
		m, err = gclang.RestoreMachine(opts.Backend, c.Collector.Dialect(), c.Prog, ck.image)
		if err != nil {
			return Result{}, fmt.Errorf("psgc: resume: %w", err)
		}
		collections = ck.Collections
	} else {
		m = c.NewMachine(opts)
	}
	if opts.Recorder != nil {
		opts.Recorder.Attach(m)
	}
	if err := restoreProfiler(&opts); err != nil {
		return Result{}, err
	}
	if opts.Profiler != nil {
		opts.Profiler.Attach(m)
	}
	fuel, every := runBudgets(opts)
	lastCk := m.Steps
	for !m.Halted {
		if opts.Checkpointer != nil && opts.Checkpointer.take() {
			ck, err := c.captureSubst(m, &opts, collections, fuel)
			if err != nil {
				return Result{}, err
			}
			opts.Checkpointer.deliver(ck)
			return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, m.Steps)
		}
		if opts.CheckpointEvery > 0 && m.Steps != lastCk && m.Steps%opts.CheckpointEvery == 0 {
			lastCk = m.Steps
			ck, err := c.captureSubst(m, &opts, collections, fuel)
			if err != nil {
				return Result{}, err
			}
			if !opts.OnCheckpoint(ck) {
				return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, m.Steps)
			}
		}
		if fuel <= 0 {
			return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrOutOfFuel, m.Steps)
		}
		fuel--
		// A term about to invoke a collector entry point is a collection.
		collected := false
		if a, ok := m.PendingCall(); ok && c.entries[a] {
			collections++
			collected = true
		}
		if err := m.Step(); err != nil {
			return Result{}, err
		}
		if opts.CheckEveryStep {
			if err := m.CheckState(); err != nil {
				return Result{}, err
			}
		}
		if opts.Progress != nil && (collected || m.Steps%every == 0) {
			ok := opts.Progress(Progress{
				Steps:       m.Steps,
				Collections: collections,
				LiveCells:   m.Mem.LiveCells(),
			})
			if !ok {
				return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrCanceled, m.Steps)
			}
		}
	}
	return finishResult(m.Result, m.Steps, collections, m.Mem)
}

func (c *Compiled) runEnv(opts RunOptions) (Result, error) {
	var m *gclang.EnvMachine
	collections := 0
	if ck := opts.ResumeFrom; ck != nil {
		var err error
		m, err = gclang.RestoreEnvMachine(opts.Backend, c.Collector.Dialect(), c.Prog, ck.image)
		if err != nil {
			return Result{}, fmt.Errorf("psgc: resume: %w", err)
		}
		collections = ck.Collections
	} else {
		m = c.NewEnvMachine(opts)
	}
	if opts.Recorder != nil {
		opts.Recorder.AttachEnv(m)
	}
	if err := restoreProfiler(&opts); err != nil {
		return Result{}, err
	}
	if opts.Profiler != nil {
		opts.Profiler.AttachEnv(m)
	}
	fuel, every := runBudgets(opts)
	lastCk := m.Steps
	for !m.Halted {
		if opts.Checkpointer != nil && opts.Checkpointer.take() {
			ck, err := c.captureEnv(m, &opts, collections, fuel)
			if err != nil {
				return Result{}, err
			}
			opts.Checkpointer.deliver(ck)
			return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, m.Steps)
		}
		if opts.CheckpointEvery > 0 && m.Steps != lastCk && m.Steps%opts.CheckpointEvery == 0 {
			lastCk = m.Steps
			ck, err := c.captureEnv(m, &opts, collections, fuel)
			if err != nil {
				return Result{}, err
			}
			if !opts.OnCheckpoint(ck) {
				return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w at step %d", ErrCheckpointed, m.Steps)
			}
		}
		if fuel <= 0 {
			return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrOutOfFuel, m.Steps)
		}
		fuel--
		collected := false
		if a, ok := m.PendingCall(); ok && c.entries[a] {
			collections++
			collected = true
		}
		if err := m.Step(); err != nil {
			return Result{}, err
		}
		if opts.Progress != nil && (collected || m.Steps%every == 0) {
			ok := opts.Progress(Progress{
				Steps:       m.Steps,
				Collections: collections,
				LiveCells:   m.Mem.LiveCells(),
			})
			if !ok {
				return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrCanceled, m.Steps)
			}
		}
	}
	return finishResult(m.Result, m.Steps, collections, m.Mem)
}

// memStats is the slice of the store surface a Result snapshot needs.
// Both the packed Store[gclang.Cell] the machines run on and the boxed
// baseline's Store[gclang.Value] satisfy it.
type memStats interface {
	Stats() regions.Stats
	LiveCells() int
}

func finishResult(v gclang.Value, steps, collections int, mem memStats) (Result, error) {
	n, ok := v.(gclang.Num)
	if !ok {
		return Result{}, fmt.Errorf("psgc: program halted with non-integer %s", v)
	}
	res := partialResult(steps, collections, mem)
	res.Value = n.N
	return res, nil
}

// partialResult snapshots an execution's observable statistics.
func partialResult(steps, collections int, mem memStats) Result {
	return Result{
		Steps:       steps,
		Collections: collections,
		Stats:       mem.Stats(),
		LiveCells:   mem.LiveCells(),
	}
}

// RunBoxed executes the compiled program on the boxed baseline machine
// (gclang.BoxedEnvMachine): interface-boxed heap cells over
// regions.Store[Value], the pre-packing representation kept for
// measurement. It exists so the benchmark harness can put a number on what
// the packed cells buy (BENCH_9's boxed-vs-packed rows) — the service
// never calls it. Capacity, FixedCapacity, Fuel, Backend, Progress, and
// ProgressEvery are honored; ghost mode, co-checking, the observability
// hooks, and WrapStore do not apply to the baseline.
func (c *Compiled) RunBoxed(opts RunOptions) (Result, error) {
	m := gclang.NewBoxedEnvMachineOn(opts.Backend, c.Collector.Dialect(), c.Prog, opts.Capacity)
	m.Mem.SetAutoGrow(!opts.FixedCapacity)
	fuel, every := runBudgets(opts)
	collections := 0
	for !m.Halted {
		if fuel <= 0 {
			return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrOutOfFuel, m.Steps)
		}
		fuel--
		collected := false
		if a, ok := m.PendingCall(); ok && c.entries[a] {
			collections++
			collected = true
		}
		if err := m.Step(); err != nil {
			return Result{}, err
		}
		if opts.Progress != nil && (collected || m.Steps%every == 0) {
			ok := opts.Progress(Progress{
				Steps:       m.Steps,
				Collections: collections,
				LiveCells:   m.Mem.LiveCells(),
			})
			if !ok {
				return partialResult(m.Steps, collections, m.Mem), fmt.Errorf("%w after %d steps", ErrCanceled, m.Steps)
			}
		}
	}
	return finishResult(m.Result, m.Steps, collections, m.Mem)
}

// Interpret runs the source program directly on the reference evaluator
// (no regions, no collector) — the semantics the compiled pipeline must
// preserve.
func Interpret(src string) (int, error) {
	p, err := source.Parse(src)
	if err != nil {
		return 0, err
	}
	if _, err := source.CheckProgram(p); err != nil {
		return 0, err
	}
	var ev source.Evaluator
	return ev.RunInt(p)
}
