// Package psgc is a Go reproduction of "Principled Scavenging" (Monnier,
// Saha, Shao; PLDI 2001): provably type-safe stop-and-copy garbage
// collectors built from a region calculus plus intensional type analysis.
//
// The package compiles a simply-typed functional source language through
// CPS conversion and typed closure conversion into λCLOS, then translates
// it into the region-and-tag language λGC, linking it against one of three
// collectors written as λGC terms and verified by λGC's own typechecker:
//
//	Basic        — the stop-and-copy collector of Fig. 12
//	Forwarding   — the sharing-preserving collector of Fig. 9 (λGCforw)
//	Generational — the minor/major collector pair of Fig. 11/§8 (λGCgen)
//
// Programs run on an abstract machine implementing the paper's allocation
// semantics over explicit regions; Run reports the observable result plus
// memory and collection statistics. Ghost mode additionally maintains the
// memory type Ψ and re-checks machine-state well-formedness after every
// step — the executable counterpart of the paper's type-preservation
// theorem.
package psgc

import (
	"errors"
	"fmt"

	"psgc/internal/clos"
	"psgc/internal/closconv"
	"psgc/internal/collector"
	"psgc/internal/cps"
	"psgc/internal/gclang"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/translate"
)

// Collector selects which type-safe collector the program is linked with.
type Collector int

// The three collectors of the paper.
const (
	Basic Collector = iota
	Forwarding
	Generational
)

func (c Collector) String() string {
	switch c {
	case Basic:
		return "basic"
	case Forwarding:
		return "forwarding"
	case Generational:
		return "generational"
	default:
		return fmt.Sprintf("Collector(%d)", int(c))
	}
}

// Dialect returns the λGC dialect the collector is written in.
func (c Collector) Dialect() gclang.Dialect {
	switch c {
	case Forwarding:
		return gclang.Forw
	case Generational:
		return gclang.Gen
	default:
		return gclang.Base
	}
}

// Compiled is a λGC program linked with a collector, ready to run.
//
// A Compiled is immutable after CompileProgram returns: Run loads the
// program into a fresh machine with its own memory, so one Compiled may be
// run from many goroutines concurrently (the service's compiled-program
// cache relies on this).
type Compiled struct {
	Collector Collector
	// Prog is the elaborated (typechecked) λGC program.
	Prog gclang.Program
	// Source and Clos expose the intermediate programs for inspection.
	Source source.Program
	Clos   clos.Program

	entries map[regions.Addr]bool
}

// Compile parses, typechecks and compiles a source program, linking it
// with the chosen collector. The resulting λGC program — collector
// included — is verified by the λGC typechecker; a failure there is a bug
// in this library, never in the user program.
func Compile(src string, col Collector) (*Compiled, error) {
	p, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(p, col)
}

// CompileProgram is Compile for an already parsed source program.
//
// The collector the program is linked against comes from the process-wide
// verified-collector cache: each dialect's collector terms are built and
// certified by the λGC typechecker exactly once per process (collector.Load)
// and shared by every compile, so only the mutator's own code blocks are
// checked here. CompileProgram is safe for concurrent use.
func CompileProgram(p source.Program, col Collector) (*Compiled, error) {
	if col < Basic || col > Generational {
		return nil, fmt.Errorf("psgc: unknown collector %v", col)
	}
	cp, err := cps.Convert(p)
	if err != nil {
		return nil, err
	}
	lp, err := closconv.Convert(cp)
	if err != nil {
		return nil, err
	}
	v, err := collector.Load(col.Dialect())
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: %w", err)
	}
	l := v.NewLayout()
	opts := translate.Options{Dialect: col.Dialect(), GC: v.GC, Minor: v.Minor, Major: v.Major}
	entries := map[regions.Addr]bool{}
	for _, a := range v.Entries {
		entries[a] = true
	}
	gp, err := translate.Translate(lp, l, opts)
	if err != nil {
		return nil, err
	}
	checker := &gclang.Checker{Dialect: col.Dialect()}
	elab, _, err := checker.CheckProgramPrefix(gp, len(v.Funs))
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: compiled program does not typecheck: %w", err)
	}
	return &Compiled{Collector: col, Prog: elab, Source: p, Clos: lp, entries: entries}, nil
}

// compileProgramCold is the uncached compile path: it rebuilds and
// re-typechecks the collector alongside the mutator, exactly as every
// compile did before the verified-collector cache existed. It is kept as
// the baseline for BenchmarkCompileCold and the cache-equivalence test.
func compileProgramCold(p source.Program, col Collector) (*Compiled, error) {
	cp, err := cps.Convert(p)
	if err != nil {
		return nil, err
	}
	lp, err := closconv.Convert(cp)
	if err != nil {
		return nil, err
	}
	l := &collector.Layout{}
	opts := translate.Options{Dialect: col.Dialect()}
	entries := map[regions.Addr]bool{}
	switch col {
	case Basic:
		b := collector.BuildBasic(l)
		opts.GC = l.Addr(b.GC)
		entries[opts.GC.Addr] = true
	case Forwarding:
		f := collector.BuildForw(l)
		opts.GC = l.Addr(f.GC)
		entries[opts.GC.Addr] = true
	case Generational:
		g := collector.BuildGen(l)
		opts.Minor = l.Addr(g.Minor)
		opts.Major = l.Addr(g.Major)
		entries[opts.Minor.Addr] = true
		entries[opts.Major.Addr] = true
	default:
		return nil, fmt.Errorf("psgc: unknown collector %v", col)
	}
	gp, err := translate.Translate(lp, l, opts)
	if err != nil {
		return nil, err
	}
	checker := &gclang.Checker{Dialect: col.Dialect()}
	elab, _, err := checker.CheckProgram(gp)
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: compiled program does not typecheck: %w", err)
	}
	return &Compiled{Collector: col, Prog: elab, Source: p, Clos: lp, entries: entries}, nil
}

// RunOptions configures an execution.
type RunOptions struct {
	// Capacity is the per-region cell count at which ifgc reports a
	// region full and a collection is triggered. Zero disables collection
	// entirely (regions never fill).
	Capacity int
	// FixedCapacity disables the survivor-driven heap growth policy.
	// With a fixed capacity, a program whose live set reaches the
	// capacity collects at every function entry and may never finish —
	// useful only for experiments that control live size.
	FixedCapacity bool
	// Fuel bounds the number of machine steps (default 50 million).
	Fuel int
	// Ghost maintains the memory type Ψ during execution, enabling
	// CheckEveryStep and post-mortem state inspection. Slower.
	Ghost bool
	// CheckEveryStep re-verifies machine-state well-formedness after
	// every transition (requires Ghost). Very slow; used by the
	// soundness test-suite.
	CheckEveryStep bool
}

// Result reports an execution's outcome.
type Result struct {
	// Value is the program's integer result.
	Value int
	// Steps is the number of machine transitions taken.
	Steps int
	// Collections is the number of collector invocations (minor and
	// major both count for the generational collector).
	Collections int
	// Stats are the memory-traffic counters.
	Stats regions.Stats
	// LiveCells is the number of live non-code cells at halt.
	LiveCells int
}

// DefaultFuel is the default machine step budget.
const DefaultFuel = 50_000_000

// ErrOutOfFuel is returned (wrapped) by Run when the step budget is
// exhausted before the program halts. The accompanying Result is still
// populated with the partial execution's steps, collections, and memory
// statistics, so callers enforcing deadlines via fuel budgets can report
// what the program did before it was cut off.
var ErrOutOfFuel = errors.New("psgc: out of fuel")

// NewMachine loads the compiled program into a fresh machine. Most
// callers want Run; NewMachine is for stepping or inspecting states.
func (c *Compiled) NewMachine(opts RunOptions) *gclang.Machine {
	m := gclang.NewMachine(c.Collector.Dialect(), c.Prog, opts.Capacity)
	m.Mem.AutoGrow = !opts.FixedCapacity
	m.Ghost = opts.Ghost || opts.CheckEveryStep
	return m
}

// Run executes the compiled program. If the fuel budget runs out the
// returned error wraps ErrOutOfFuel and the Result still carries the
// partial execution's statistics.
func (c *Compiled) Run(opts RunOptions) (Result, error) {
	m := c.NewMachine(opts)
	fuel := opts.Fuel
	if fuel == 0 {
		fuel = DefaultFuel
	}
	collections := 0
	for !m.Halted {
		if fuel <= 0 {
			return partialResult(m, collections), fmt.Errorf("%w after %d steps", ErrOutOfFuel, m.Steps)
		}
		fuel--
		// A term about to invoke a collector entry point is a collection.
		if app, ok := m.Term.(gclang.AppT); ok {
			if a, ok := app.Fn.(gclang.AddrV); ok && c.entries[a.Addr] {
				collections++
			}
		}
		if err := m.Step(); err != nil {
			return Result{}, err
		}
		if opts.CheckEveryStep {
			if err := m.CheckState(); err != nil {
				return Result{}, err
			}
		}
	}
	n, ok := m.Result.(gclang.Num)
	if !ok {
		return Result{}, fmt.Errorf("psgc: program halted with non-integer %s", m.Result)
	}
	res := partialResult(m, collections)
	res.Value = n.N
	return res, nil
}

// partialResult snapshots a machine's observable statistics.
func partialResult(m *gclang.Machine, collections int) Result {
	return Result{
		Steps:       m.Steps,
		Collections: collections,
		Stats:       m.Mem.Stats,
		LiveCells:   m.Mem.LiveCells(),
	}
}

// Interpret runs the source program directly on the reference evaluator
// (no regions, no collector) — the semantics the compiled pipeline must
// preserve.
func Interpret(src string) (int, error) {
	p, err := source.Parse(src)
	if err != nil {
		return 0, err
	}
	if _, err := source.CheckProgram(p); err != nil {
		return 0, err
	}
	var ev source.Evaluator
	return ev.RunInt(p)
}
