module psgc

go 1.22
