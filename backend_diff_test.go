package psgc

import (
	"math/rand"
	"testing"

	"psgc/internal/gen"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/workload"
)

// runBoth executes a compiled program on both memory backends with
// otherwise identical options and asserts the observable outcomes —
// value, step count, collection count, the full Stats counters, and live
// cells — are identical. The counter identities PR 2's timeline checks
// rest on must hold bit for bit across backends.
func runBoth(t *testing.T, c *Compiled, opts RunOptions) Result {
	t.Helper()
	opts.Backend = regions.BackendMap
	mapRes, mapErr := c.Run(opts)
	opts.Backend = regions.BackendArena
	arenaRes, arenaErr := c.Run(opts)
	if (mapErr == nil) != (arenaErr == nil) {
		t.Fatalf("error divergence: map %v arena %v", mapErr, arenaErr)
	}
	if mapRes != arenaRes {
		t.Fatalf("result divergence:\n  map   %+v\n  arena %+v", mapRes, arenaRes)
	}
	return arenaRes
}

// TestBackendsAgreeOnESuiteWorkloads runs the E-suite surface workloads —
// the allocation-heavy E1 program and the sharing DAG churn — across all
// collectors and both engines on both backends.
func TestBackendsAgreeOnESuiteWorkloads(t *testing.T) {
	srcs := map[string]string{
		"allocHeavy": workload.AllocHeavySrc(40),
		"sharedDAG":  workload.SharedDAGSrc(12),
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			want, err := Interpret(src)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, col := range allCollectors {
				for _, eng := range []Engine{EngineEnv, EngineSubst} {
					c, err := Compile(src, col)
					if err != nil {
						t.Fatalf("%s: compile: %v", col, err)
					}
					res := runBoth(t, c, RunOptions{Capacity: 32, Engine: eng})
					if res.Value != want {
						t.Errorf("%s/%v: value %d, reference %d", col, eng, res.Value, want)
					}
					if res.Collections == 0 {
						t.Errorf("%s/%v: capacity 32 should force collections", col, eng)
					}
				}
			}
		})
	}
}

// TestBackendsAgreeOnGenPopulations drives randomly generated well-typed
// programs through every collector on both backends.
func TestBackendsAgreeOnGenPopulations(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	want := 12
	if testing.Short() {
		want = 4
	}
	ran := 0
	for attempts := 0; ran < want && attempts < 200; attempts++ {
		p := gen.Program(r, gen.DefaultConfig)
		ev := source.Evaluator{Fuel: 2_000_000}
		ref, err := ev.RunInt(p)
		if err != nil {
			continue
		}
		ran++
		for _, col := range allCollectors {
			c, err := CompileProgram(p, col)
			if err != nil {
				t.Fatalf("population %d (%s): compile: %v", ran, col, err)
			}
			res := runBoth(t, c, RunOptions{Capacity: 16})
			if res.Value != ref {
				t.Errorf("population %d (%s): value %d, reference %d", ran, col, res.Value, ref)
			}
		}
	}
	if ran < want {
		t.Fatalf("only %d/%d generated programs terminated", ran, want)
	}
}

// TestCoCheckValidatesArena runs the arena backend under the co-checker:
// the substitution oracle stays on the map backend, so every step's
// counters and the full final heap of the arena are compared cell by cell
// against the reference substrate.
func TestCoCheckValidatesArena(t *testing.T) {
	for _, col := range allCollectors {
		c, err := Compile(workload.AllocHeavySrc(30), col)
		if err != nil {
			t.Fatalf("%s: compile: %v", col, err)
		}
		var div *Divergence
		res, err := c.Run(RunOptions{
			Capacity: 32,
			Backend:  regions.BackendArena,
			CoCheck:  true,
			OnDivergence: func(d Divergence) {
				if div == nil {
					div = &d
				}
			},
		})
		if err != nil {
			t.Fatalf("%s: run: %v", col, err)
		}
		if div != nil {
			t.Fatalf("%s: arena diverged from map oracle: %v", col, *div)
		}
		plain, err := c.Run(RunOptions{Capacity: 32, Backend: regions.BackendArena})
		if err != nil {
			t.Fatalf("%s: plain run: %v", col, err)
		}
		if res != plain {
			t.Errorf("%s: co-checked result %+v, plain arena %+v", col, res, plain)
		}
	}
}
