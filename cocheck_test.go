package psgc

import (
	"errors"
	"strings"
	"testing"

	"psgc/internal/fault"
)

// TestCoCheckAgreesClean runs every collector co-checked with no faults
// installed: the engines must agree (no divergence callback), and the
// result must match both the reference evaluator and a plain env run.
func TestCoCheckAgreesClean(t *testing.T) {
	want, err := Interpret(allocHeavy)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range allCollectors {
		c, err := Compile(allocHeavy, col)
		if err != nil {
			t.Fatalf("%v: %v", col, err)
		}
		var div *Divergence
		res, err := c.Run(RunOptions{
			Capacity: 40,
			CoCheck:  true,
			OnDivergence: func(d Divergence) {
				div = &d
			},
		})
		if err != nil {
			t.Fatalf("%v: co-checked run: %v", col, err)
		}
		if div != nil {
			t.Fatalf("%v: clean run diverged: %v", col, *div)
		}
		if res.Value != want {
			t.Errorf("%v: value %d, want %d", col, res.Value, want)
		}
		plain, err := c.Run(RunOptions{Capacity: 40})
		if err != nil {
			t.Fatalf("%v: plain run: %v", col, err)
		}
		if res.Steps != plain.Steps || res.Collections != plain.Collections || res.Stats != plain.Stats {
			t.Errorf("%v: co-checked observables %+v differ from plain run %+v", col, res, plain)
		}
	}
}

// TestCoCheckCatchesCorruption injects heap corruption (env machine only)
// and asserts the co-check detects the divergence while the run still
// returns the oracle's correct result — the guardrail the service builds on.
func TestCoCheckCatchesCorruption(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.HeapCorrupt, 1))
	defer fault.Install(nil)

	want, err := Interpret(allocHeavy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(allocHeavy, Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	var divs []Divergence
	res, err := c.Run(RunOptions{
		Capacity: 40,
		CoCheck:  true,
		OnDivergence: func(d Divergence) {
			divs = append(divs, d)
		},
	})
	if err != nil {
		t.Fatalf("co-checked run under corruption: %v", err)
	}
	if len(divs) != 1 {
		t.Fatalf("got %d divergence callbacks, want exactly 1: %v", len(divs), divs)
	}
	if divs[0].Step <= 0 || divs[0].Detail == "" {
		t.Errorf("malformed divergence: %+v", divs[0])
	}
	if res.Value != want {
		t.Errorf("fallback value %d, want the oracle's %d", res.Value, want)
	}
}

// TestCoCheckCatchesEnvStepFault injects step errors into the env machine:
// the shadow dies, the divergence reports the injected error, and the
// oracle still completes the run.
func TestCoCheckCatchesEnvStepFault(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.MachineStep, 1))
	defer fault.Install(nil)

	c, err := Compile(allocHeavy, Basic)
	if err != nil {
		t.Fatal(err)
	}
	var div Divergence
	res, err := c.Run(RunOptions{
		Capacity:     40,
		CoCheck:      true,
		OnDivergence: func(d Divergence) { div = d },
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(div.Detail, "injected fault") {
		t.Errorf("divergence detail %q does not report the injected error", div.Detail)
	}
	want, _ := Interpret(allocHeavy)
	if res.Value != want {
		t.Errorf("value %d, want %d", res.Value, want)
	}
}

// TestCompileFaultPoint asserts the compile.parse injection point fails
// compiles with the ErrInjected sentinel, and that compilation recovers
// once the registry is uninstalled.
func TestCompileFaultPoint(t *testing.T) {
	fault.Install(fault.NewRegistry(1).Enable(fault.CompileParse, 1))
	_, err := Compile(allocHeavy, Basic)
	fault.Install(nil)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("compile under injection: err %v, want ErrInjected", err)
	}
	if _, err := Compile(allocHeavy, Basic); err != nil {
		t.Fatalf("compile after uninstall: %v", err)
	}
}

// TestEnvMachineInjectedStepLeavesStateUnchanged pins the stuck-step
// contract for injected faults: the error must not advance the machine.
func TestEnvMachineInjectedStepLeavesStateUnchanged(t *testing.T) {
	c, err := Compile(allocHeavy, Basic)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewEnvMachine(RunOptions{Capacity: 40})
	for i := 0; i < 10; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	steps, stats := m.Steps, m.Mem.Stats()
	fault.Install(fault.NewRegistry(1).Enable(fault.MachineStep, 1))
	errInjected := m.Step()
	fault.Install(nil)
	if !errors.Is(errInjected, fault.ErrInjected) {
		t.Fatalf("step under injection: %v", errInjected)
	}
	if m.Steps != steps || m.Mem.Stats() != stats {
		t.Error("injected step error mutated machine state")
	}
	if err := m.Step(); err != nil {
		t.Fatalf("machine unusable after injected error: %v", err)
	}
}
