package psgc

// Tests for the verified-collector cache and the concurrency guarantees
// the service layer depends on: one typecheck per dialect per process,
// cached and cold compiles agreeing, concurrent Run on a shared Compiled
// (exercised under -race), and partial results on fuel exhaustion.

import (
	"errors"
	"sync"
	"testing"

	"psgc/internal/collector"
	"psgc/internal/source"
)

// TestCollectorTypecheckedOncePerDialect drives several compiles per
// collector — concurrently, to also exercise the sync.Once path — and
// asserts the collector build-and-verify ran exactly once per dialect.
func TestCollectorTypecheckedOncePerDialect(t *testing.T) {
	var wg sync.WaitGroup
	for _, col := range allCollectors {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(col Collector) {
				defer wg.Done()
				if _, err := Compile(allocHeavy, col); err != nil {
					t.Errorf("%v: compile: %v", col, err)
				}
			}(col)
		}
	}
	wg.Wait()
	for _, col := range allCollectors {
		if n := collector.Typechecks(col.Dialect()); n != 1 {
			t.Errorf("%v: collector typechecked %d times, want exactly 1", col, n)
		}
	}
}

// TestCachedCompileMatchesCold asserts the cached compile path produces a
// program with the same shape and behavior as the original uncached path.
func TestCachedCompileMatchesCold(t *testing.T) {
	for _, col := range allCollectors {
		p := source.MustParse(allocHeavy)
		warm, err := CompileProgram(p, col)
		if err != nil {
			t.Fatalf("%v: cached compile: %v", col, err)
		}
		cold, err := compileProgramCold(p, col)
		if err != nil {
			t.Fatalf("%v: cold compile: %v", col, err)
		}
		if len(warm.Prog.Code) != len(cold.Prog.Code) {
			t.Fatalf("%v: cached compile has %d code blocks, cold has %d",
				col, len(warm.Prog.Code), len(cold.Prog.Code))
		}
		wres, err := warm.Run(RunOptions{Capacity: 40})
		if err != nil {
			t.Fatalf("%v: cached run: %v", col, err)
		}
		cres, err := cold.Run(RunOptions{Capacity: 40})
		if err != nil {
			t.Fatalf("%v: cold run: %v", col, err)
		}
		if wres != cres {
			t.Errorf("%v: cached result %+v, cold result %+v", col, wres, cres)
		}
	}
}

// TestConcurrentRunSharedCompiled runs one Compiled from many goroutines
// simultaneously. Run under -race this asserts Compiled is truly immutable
// after compilation — the property the service's compiled-program cache
// needs to hand one *Compiled to every worker.
func TestConcurrentRunSharedCompiled(t *testing.T) {
	for _, col := range allCollectors {
		c, err := Compile(allocHeavy, col)
		if err != nil {
			t.Fatalf("%v: compile: %v", col, err)
		}
		want, err := Interpret(allocHeavy)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 8
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(ghost bool) {
				defer wg.Done()
				res, err := c.Run(RunOptions{Capacity: 40, Ghost: ghost})
				if err != nil {
					t.Errorf("%v: concurrent run: %v", col, err)
					return
				}
				if res.Value != want {
					t.Errorf("%v: concurrent run got %d, want %d", col, res.Value, want)
				}
			}(i%2 == 0)
		}
		wg.Wait()
	}
}

// TestRunOutOfFuelPartialResult asserts the fuel-exhausted path still
// reports the partial execution — the diagnostics the service returns for
// deadline-killed requests.
func TestRunOutOfFuelPartialResult(t *testing.T) {
	c, err := Compile(allocHeavy, Basic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{Capacity: 40, Fuel: 50})
	if !errors.Is(err, ErrOutOfFuel) {
		t.Fatalf("run with tiny fuel: err = %v, want ErrOutOfFuel", err)
	}
	if res.Steps != 50 {
		t.Errorf("partial result reports %d steps, want 50", res.Steps)
	}
	if res.Stats.Puts == 0 {
		t.Errorf("partial result has empty memory stats")
	}
}
