// Quickstart: compile a small functional program, link it against the
// basic type-safe collector of Fig. 12, run it with a tiny region capacity
// so collections actually happen, and inspect the statistics.
package main

import (
	"fmt"
	"log"

	"psgc"
)

const program = `
-- Build a list-like chain of pairs and sum the firsts.
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 50
`

func main() {
	// The reference semantics: no regions, no collector.
	want, err := psgc.Interpret(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: %d\n", want)

	// Compile and link against the basic collector. Compilation
	// typechecks the whole λGC program — collector included.
	compiled, err := psgc.Compile(program, psgc.Basic)
	if err != nil {
		log.Fatal(err)
	}

	// Run with a small capacity so the nursery fills repeatedly.
	res, err := compiled.Run(psgc.RunOptions{Capacity: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled result:  %d (agrees: %v)\n", res.Value, res.Value == want)
	fmt.Printf("machine steps:    %d\n", res.Steps)
	fmt.Printf("collections:      %d\n", res.Collections)
	fmt.Printf("cells allocated:  %d\n", res.Stats.Puts)
	fmt.Printf("cells reclaimed:  %d\n", res.Stats.CellsReclaimed)
	fmt.Printf("max live cells:   %d\n", res.Stats.MaxLiveCells)
	fmt.Printf("live at halt:     %d\n", res.LiveCells)
}
