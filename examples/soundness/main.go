// Soundness: watch the empirical type-preservation theorem at work. The
// machine runs a compiled program in ghost mode, re-checking machine-state
// well-formedness (Defs. 6.3/7.1) after every single transition — through
// complete garbage collections — and prints a trace of the interesting
// moments.
package main

import (
	"fmt"
	"log"

	"psgc"
	"psgc/internal/gclang"
)

const program = `
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 5
`

func main() {
	compiled, err := psgc.Compile(program, psgc.Forwarding)
	if err != nil {
		log.Fatal(err)
	}
	m := compiled.NewMachine(psgc.RunOptions{Capacity: 16, Ghost: true})
	m.Mem.SetAutoGrow(true)

	checked := 0
	for !m.Halted {
		before := describe(m)
		if err := m.Step(); err != nil {
			log.Fatalf("progress violated at step %d: %v", m.Steps, err)
		}
		if err := m.CheckState(); err != nil {
			log.Fatalf("preservation violated: %v", err)
		}
		checked++
		after := describe(m)
		if before != after {
			fmt.Printf("step %5d: %s\n", m.Steps, after)
		}
	}
	n := m.Result.(gclang.Num)
	fmt.Printf("\nhalted with %d after %d steps\n", n.N, m.Steps)
	fmt.Printf("every one of the %d intermediate states re-checked: ⊢ (M, e) held throughout\n", checked)
}

// describe summarizes the memory shape (region count and live cells).
func describe(m *gclang.Machine) string {
	return fmt.Sprintf("%d regions, %d live cells, %d collections-worth reclaimed",
		len(m.Mem.Regions()), m.Mem.LiveCells(), m.Mem.Stats().RegionsReclaimed)
}
