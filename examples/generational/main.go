// Generational: compare collector behaviour on a workload with a large
// long-lived structure and a stream of short-lived garbage — the workload
// generational collection (paper §8) is designed for. The generational
// collector's minor collections stop at old-generation references, so the
// long-lived data stops being re-copied once promoted.
package main

import (
	"fmt"
	"log"

	"psgc"
)

// The program builds a long-lived tower of pairs once, then loops
// allocating short-lived pairs, finally consuming the tower.
const program = `
fun tower (n : int) : int * (int * (int * int)) =
  (n, (n + 1, (n + 2, n + 3)))
fun churn (state : int * (int * (int * (int * int)))) : int =
  let n = fst state in
  let keep = snd state in
  if0 n then fst keep + fst (snd (snd keep))
  else let junk = (n, (n, n)) in churn (n - 1, keep)
do churn (80, tower 10)
`

func main() {
	want, err := psgc.Interpret(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: %d\n\n", want)
	fmt.Println("collector     | result | collections | cells copied (puts by GC ≈ total-mutator)")
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		c, err := psgc.Compile(program, col)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(psgc.RunOptions{Capacity: 48})
		if err != nil {
			log.Fatalf("%v: %v", col, err)
		}
		fmt.Printf("%-13s | %6d | %11d | total puts %d, reclaimed %d\n",
			col, res.Value, res.Collections, res.Stats.Puts, res.Stats.CellsReclaimed)
		if res.Value != want {
			log.Fatalf("%v disagrees with the reference!", col)
		}
	}
	fmt.Println()
	fmt.Println("The generational collector's minor collections promote the")
	fmt.Println("long-lived tower once and then stop re-copying it: total puts")
	fmt.Println("(mutator + collector copies) drop relative to the basic and")
	fmt.Println("forwarding collectors, which re-copy all live data every time.")
}
