// Sharing: the §7 motivation for forwarding pointers, demonstrated on the
// λGC heap directly. A braided DAG of depth n has n+1 nodes but 2^n paths;
// the basic collector of Fig. 12 copies once per path (turning the DAG
// into a tree), while the forwarding-pointer collector of Fig. 9 copies
// each node once.
package main

import (
	"fmt"
	"log"

	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/tags"
)

// collectOnce builds a braided DAG of the given depth in a fresh region,
// runs one full collection via the chosen collector, and reports the
// number of cells in the to-space afterwards.
func collectOnce(depth int, forw bool) (copied, steps int) {
	l := &collector.Layout{}
	var gcAddr gclang.AddrV
	dialect := gclang.Base
	if forw {
		f := collector.BuildForw(l)
		gcAddr = l.Addr(f.GC)
		dialect = gclang.Forw
	} else {
		b := collector.BuildBasic(l)
		gcAddr = l.Addr(b.GC)
	}

	// Build the heap-allocating prefix of the main term.
	var prefix []func(gclang.Term) gclang.Term
	idx := 0
	alloc := func(v gclang.Value) gclang.Value {
		x := names.Name(fmt.Sprintf("n%d", idx))
		idx++
		if forw {
			v = gclang.InlV{Val: v}
		}
		prefix = append(prefix, func(e gclang.Term) gclang.Term {
			return gclang.LetT{X: x, Op: gclang.PutOp{R: gclang.RVar{Name: "r0"}, V: v}, Body: e}
		})
		return gclang.Var{Name: x}
	}
	node := alloc(gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}})
	tag := tags.Tag(tags.Prod{L: tags.Int{}, R: tags.Int{}})
	for i := 0; i < depth; i++ {
		node = alloc(gclang.PairV{L: node, R: node})
		tag = tags.Prod{L: tag, R: tag}
	}

	// finish: receive the copied root and halt.
	l.Add("finish", gclang.LamV{
		RParams: []names.Name{"r"},
		Params: []gclang.Param{{Name: "x",
			Ty: gclang.MT{Rs: []gclang.Region{gclang.RVar{Name: "r"}}, Tag: tag}}},
		Body: gclang.HaltT{V: gclang.Num{N: 0}},
	})

	body := gclang.Term(gclang.AppT{
		Fn: gcAddr, Tags: []tags.Tag{tag},
		Rs:   []gclang.Region{gclang.RVar{Name: "r0"}},
		Args: []gclang.Value{l.Addr("finish"), node},
	})
	for i := len(prefix) - 1; i >= 0; i-- {
		body = prefix[i](body)
	}
	prog := gclang.Program{Code: l.Funs, Main: gclang.LetRegionT{R: "r0", Body: body}}

	checker := &gclang.Checker{Dialect: dialect}
	elab, _, err := checker.CheckProgram(prog)
	if err != nil {
		log.Fatalf("collector program does not typecheck: %v", err)
	}
	m := gclang.NewMachine(dialect, elab, 0)
	if _, err := m.Run(500_000_000); err != nil {
		log.Fatal(err)
	}
	// After collection only the to-space survives (plus cd).
	live := 0
	for _, rn := range m.Mem.Regions() {
		if rn != regions.CD {
			live += m.Mem.Size(rn)
		}
	}
	return live, m.Steps
}

func main() {
	fmt.Println("Sharing preservation (paper §7, experiment E3)")
	fmt.Println("depth | nodes | basic copies | forwarding copies")
	for depth := 1; depth <= 12; depth++ {
		basic, _ := collectOnce(depth, false)
		forw, _ := collectOnce(depth, true)
		fmt.Printf("%5d | %5d | %12d | %17d\n", depth, depth+1, basic, forw)
	}
	fmt.Println()
	fmt.Println("The basic collector's copies grow as 2^(depth+1)-1 (the DAG")
	fmt.Println("becomes a tree); the forwarding collector's stay at depth+1.")
}
