package psgc

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"psgc/internal/checkpoint"
	"psgc/internal/gclang"
	"psgc/internal/obs"
	"psgc/internal/regions"
	"psgc/internal/workload"
)

// checkpointAt runs the compiled program until step `cut`, captures a
// checkpoint there, and asserts the run stopped with ErrCheckpointed.
func checkpointAt(t *testing.T, c *Compiled, opts RunOptions, cut int) *Checkpoint {
	t.Helper()
	var ck *Checkpoint
	opts.CheckpointEvery = cut
	opts.OnCheckpoint = func(k *Checkpoint) bool { ck = k; return false }
	_, err := c.Run(opts)
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("run did not checkpoint: %v", err)
	}
	if ck == nil {
		t.Fatal("OnCheckpoint never fired")
	}
	if ck.Steps != cut {
		t.Fatalf("checkpoint at step %d, want %d", ck.Steps, cut)
	}
	return ck
}

// TestCheckpointResumeCrossBackend is the acceptance differential: a run
// killed mid-execution and resumed on the *other* backend — arena→map and
// map→arena, across a collector×capacity grid, through the full wire
// round trip — must produce a bit-identical Result (value, steps,
// collections, every Stats counter, live cells) to the uninterrupted run.
func TestCheckpointResumeCrossBackend(t *testing.T) {
	src := workload.AllocHeavySrc(40)
	caps := []int{24, 48}
	if testing.Short() {
		caps = []int{32}
	}
	dirs := []struct {
		name     string
		from, to regions.Backend
	}{
		{"arena_to_map", regions.BackendArena, regions.BackendMap},
		{"map_to_arena", regions.BackendMap, regions.BackendArena},
	}
	for _, col := range allCollectors {
		c, err := Compile(src, col)
		if err != nil {
			t.Fatalf("%v: compile: %v", col, err)
		}
		for _, capac := range caps {
			ref, err := c.Run(RunOptions{Capacity: capac})
			if err != nil {
				t.Fatalf("%v/cap%d: reference run: %v", col, capac, err)
			}
			if ref.Collections == 0 {
				t.Fatalf("%v/cap%d: reference run never collected", col, capac)
			}
			for _, dir := range dirs {
				dir := dir
				t.Run(fmt.Sprintf("%v/cap%d/%s", col, capac, dir.name), func(t *testing.T) {
					ck := checkpointAt(t, c, RunOptions{
						Capacity:       capac,
						Backend:        dir.from,
						CheckpointMeta: CheckpointMeta{SourceHash: "h1", TraceID: "mig-1"},
					}, ref.Steps/2)
					if ck.Backend != dir.from || ck.Engine != EngineEnv || ck.Collector != col {
						t.Fatalf("checkpoint identity wrong: %+v", ck)
					}
					// Through the wire: encode, decode (full re-certification),
					// then resume on the other backend.
					blob, err := ck.Encode()
					if err != nil {
						t.Fatal(err)
					}
					dck, err := DecodeCheckpoint(blob)
					if err != nil {
						t.Fatal(err)
					}
					if dck.TraceID != "mig-1" || dck.SourceHash != "h1" ||
						dck.Steps != ck.Steps || dck.Backend != dir.from {
						t.Fatalf("decoded checkpoint identity wrong: %+v", dck)
					}
					got, err := dck.Resume(RunOptions{Backend: dir.to})
					if err != nil {
						t.Fatal(err)
					}
					if got != ref {
						t.Fatalf("resumed run diverged:\n  resumed       %+v\n  uninterrupted %+v", got, ref)
					}
				})
			}
		}
	}
}

// TestCheckpointerPausesOnDemand exercises the service's pause path: a
// Progress callback requests a checkpoint mid-run, the run stops at the
// next step boundary with ErrCheckpointed, delivers the checkpoint on the
// channel, and the resumed run (other backend) matches the uninterrupted
// one.
func TestCheckpointerPausesOnDemand(t *testing.T) {
	src := workload.AllocHeavySrc(30)
	c, err := Compile(src, Basic)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCheckpointer()
	requested := false
	res, err := c.Run(RunOptions{
		Capacity:      32,
		Backend:       regions.BackendArena,
		Checkpointer:  cp,
		ProgressEvery: 100,
		Progress: func(p Progress) bool {
			if !requested && p.Steps >= ref.Steps/2 {
				requested = true
				cp.Request()
			}
			return true
		},
	})
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("run did not stop at checkpoint: %v (res %+v)", err, res)
	}
	var ck *Checkpoint
	select {
	case ck = <-cp.Checkpoints():
	default:
		t.Fatal("no checkpoint delivered")
	}
	if ck.Steps <= ref.Steps/2 || ck.Steps >= ref.Steps {
		t.Fatalf("checkpoint at step %d, expected mid-run (ref %d)", ck.Steps, ref.Steps)
	}
	got, err := ck.Resume(RunOptions{Backend: regions.BackendMap})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("resumed run diverged:\n  resumed       %+v\n  uninterrupted %+v", got, ref)
	}
}

// TestCheckpointResumeCoChecked resumes an env checkpoint under CoCheck:
// the substitution oracle is rebuilt from the same image, the lockstep
// counter comparison holds across the checkpoint (no divergence), and the
// result matches the uninterrupted run. Checkpointing *from* a co-checked
// run is exercised too.
func TestCheckpointResumeCoChecked(t *testing.T) {
	src := workload.AllocHeavySrc(30)
	c, err := Compile(src, Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint taken from a co-checked run (captured from the shadow).
	ck := checkpointAt(t, c, RunOptions{Capacity: 32, Backend: regions.BackendArena, CoCheck: true}, ref.Steps/3)
	if ck.Engine != EngineEnv {
		t.Fatalf("co-checked capture engine %v, want env", ck.Engine)
	}

	// Resume co-checked on the other backend.
	got, err := ck.Resume(RunOptions{
		Backend: regions.BackendMap,
		CoCheck: true,
		OnDivergence: func(d Divergence) {
			t.Errorf("resumed co-check diverged: %v", d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("resumed co-checked run diverged:\n  resumed       %+v\n  uninterrupted %+v", got, ref)
	}
}

// TestCheckpointSubstEngine checkpoints a substitution-machine run and
// resumes it across backends; the checkpoint dictates the engine, so the
// resume ignores opts.Engine.
func TestCheckpointSubstEngine(t *testing.T) {
	src := workload.AllocHeavySrc(20)
	c, err := Compile(src, Generational)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(RunOptions{Capacity: 32, Engine: EngineSubst})
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpointAt(t, c, RunOptions{Capacity: 32, Engine: EngineSubst, Backend: regions.BackendMap}, ref.Steps/2)
	if ck.Engine != EngineSubst {
		t.Fatalf("engine %v, want subst", ck.Engine)
	}
	blob, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dck, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Engine comes from the checkpoint even if the resume asks for env.
	got, err := dck.Resume(RunOptions{Backend: regions.BackendArena, Engine: EngineEnv})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("resumed subst run diverged:\n  resumed       %+v\n  uninterrupted %+v", got, ref)
	}
}

// TestCheckpointProfilerContinuity: a profiler restored from the
// checkpoint and fed the rest of the run reports the same profile —
// including the reservoir sampler's exact contents — as one that watched
// the whole run.
func TestCheckpointProfilerContinuity(t *testing.T) {
	src := workload.AllocHeavySrc(40)
	c, err := Compile(src, Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	refProf := c.Profiler()
	ref, err := c.Run(RunOptions{Capacity: 24, Backend: regions.BackendArena, Profiler: refProf})
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Profiler()
	ck := checkpointAt(t, c, RunOptions{Capacity: 24, Backend: regions.BackendArena, Profiler: p1}, ref.Steps/2)
	p2 := c.Profiler()
	got, err := ck.Resume(RunOptions{Backend: regions.BackendArena, Profiler: p2})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("resumed run diverged: %+v vs %+v", got, ref)
	}
	if !reflect.DeepEqual(p2.Profile(), refProf.Profile()) {
		t.Fatalf("resumed profile diverged:\nresumed:       %+v\nuninterrupted: %+v", p2.Profile(), refProf.Profile())
	}
}

// TestCheckpointFuelInheritance: with opts.Fuel zero a resume inherits the
// checkpoint's remaining fuel, so an interrupted budget is still enforced.
func TestCheckpointFuelInheritance(t *testing.T) {
	src := workload.AllocHeavySrc(30)
	c, err := Compile(src, Basic)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	cut := ref.Steps / 2
	ck := checkpointAt(t, c, RunOptions{Capacity: 32, Fuel: cut + 5}, cut)
	if ck.FuelRemaining != 5 {
		t.Fatalf("fuel remaining %d, want 5", ck.FuelRemaining)
	}
	if _, err := ck.Resume(RunOptions{}); !errors.Is(err, ErrOutOfFuel) {
		t.Fatalf("resume with 5 fuel left: %v, want ErrOutOfFuel", err)
	}
	// An explicit budget overrides the inherited one.
	if got, err := ck.Resume(RunOptions{Fuel: DefaultFuel}); err != nil || got != ref {
		t.Fatalf("resume with fresh fuel: %+v, %v (ref %+v)", got, err, ref)
	}
}

// TestDecodeCheckpointRejectsCorruptBlobs: truncated, bit-flipped, and
// semantically tampered blobs (wrong engine, wrong collector dialect,
// tampered collector prefix, corrupted heap image, corrupted profiler
// image, negative counters) are all rejected with an error — never a
// panic, never a resumable machine.
func TestDecodeCheckpointRejectsCorruptBlobs(t *testing.T) {
	src := workload.AllocHeavySrc(20)
	c, err := Compile(src, Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpointAt(t, c, RunOptions{Capacity: 32, Backend: regions.BackendArena}, ref.Steps/2)
	blob, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}

	reject := func(name string, data []byte) {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeCheckpoint(data); err == nil {
				t.Fatal("corrupt blob decoded into a resumable checkpoint")
			}
		})
	}
	reject("empty", nil)
	reject("truncated_short", blob[:10])
	reject("truncated_half", blob[:len(blob)/2])
	reject("truncated_trailer", blob[:len(blob)-1])
	for _, pos := range []int{0, 11, len(blob) / 3, len(blob) / 2, len(blob) - 3} {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x20
		reject(fmt.Sprintf("bitflip_%d", pos), mut)
	}

	// Semantic tampers: rebuild a validly-sealed blob around a corrupted
	// snapshot, so only the re-certification layers can catch it.
	_, good, err := checkpoint.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	tampers := []struct {
		name   string
		tamper func(*checkpoint.Snapshot)
	}{
		{"env_image_as_subst", func(s *checkpoint.Snapshot) { s.Engine = "subst" }},
		{"unknown_engine", func(s *checkpoint.Snapshot) { s.Engine = "warp" }},
		{"collector_dialect_mismatch", func(s *checkpoint.Snapshot) { s.Collector = "basic" }},
		{"unknown_collector", func(s *checkpoint.Snapshot) { s.Collector = "mark-sweep" }},
		{"unknown_backend", func(s *checkpoint.Snapshot) { s.Backend = "tape" }},
		{"negative_fuel", func(s *checkpoint.Snapshot) { s.FuelRemaining = -1 }},
		{"negative_collections", func(s *checkpoint.Snapshot) { s.Collections = -1 }},
		{"tampered_collector_prefix", func(s *checkpoint.Snapshot) {
			code := append([]gclang.NamedFun(nil), s.Program.Code...)
			code[0].Name = "evil"
			s.Program.Code = code
		}},
		{"heap_counter_drift", func(s *checkpoint.Snapshot) { s.Machine.Heap.Counter++ }},
		{"corrupt_profiler", func(s *checkpoint.Snapshot) { s.Profiler = &obs.ProfilerImage{Rng: 0} }},
	}
	for _, tc := range tampers {
		s2 := *good
		tc.tamper(&s2)
		mut, err := checkpoint.Encode(&s2)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", tc.name, err)
		}
		reject(tc.name, mut)
	}
}

// TestCheckpointOptionValidation pins the option combinations Run refuses.
func TestCheckpointOptionValidation(t *testing.T) {
	src := workload.AllocHeavySrc(10)
	c, err := Compile(src, Basic)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(RunOptions{CheckpointEvery: 100}); err == nil {
		t.Fatal("CheckpointEvery without OnCheckpoint accepted")
	}
	if _, err := c.Run(RunOptions{Ghost: true, Checkpointer: NewCheckpointer()}); err == nil {
		t.Fatal("checkpointing in ghost mode accepted")
	}
	ref, err := c.Run(RunOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpointAt(t, c, RunOptions{Capacity: 32}, ref.Steps/2)
	if _, err := ck.Resume(RunOptions{Ghost: true}); err == nil {
		t.Fatal("resume into ghost mode accepted")
	}
	if _, err := ck.Resume(RunOptions{
		WrapStore: func(s regions.Store[gclang.Cell]) regions.Store[gclang.Cell] { return s },
	}); err == nil {
		t.Fatal("resume with WrapStore accepted")
	}
	other, err := Compile(src, Forwarding)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(RunOptions{ResumeFrom: ck}); err == nil {
		t.Fatal("resume against a different compiled program accepted")
	}
}
