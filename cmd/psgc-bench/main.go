// Command psgc-bench regenerates the per-experiment tables of DESIGN.md
// (E1–E9): the behavioural claims of "Principled Scavenging" measured on
// this reproduction. Run with no arguments for every experiment, or pass
// experiment ids (e1 … e9) to select.
//
// Additional modes:
//
//	-engine env|subst     execution engine for in-process experiments (default env)
//	-backend map|arena    memory substrate for in-process experiments (default map)
//	-remote URL           drive the experiment suite (E1–E9) through a running
//	                      psgc-served instance: per-collector / per-engine
//	                      p50/p90/p99 request latencies next to the behavioural
//	                      statistics the servers report. Experiments whose
//	                      instrumentation lives inside the abstract machine
//	                      (e2, e4, e8) print their local tables with a note.
//	-gate URL             base URL of a psgc-gate fleet front. Alone it is a
//	                      remote target like -remote; combined with -remote it
//	                      adds a direct-vs-gate latency comparison plus the
//	                      gate's routing counters (retries, rebalances, peer
//	                      cache tier).
//	-snapshot PATH        write a JSON snapshot of the E1 workload under both
//	                      engines (the CI BENCH_4.json artifact) and exit
//	-snapshot-backend PATH  write a JSON snapshot comparing the map and arena
//	                      memory backends on the E1 workload — whole-run rows
//	                      with bit-for-bit counter identities, a co-check
//	                      verification, and the substrate-isolated op-trace
//	                      replay (the CI BENCH_7.json artifact) — and exit
//	-snapshot-fleet PATH  write a fleet-mode JSON snapshot (E1 latency
//	                      percentiles through -gate or -remote, plus the gate's
//	                      metrics when the target is a gate — the CI
//	                      BENCH_6.json artifact) and exit
//	-snapshot-policy PATH  write a JSON snapshot of the always-on profiling
//	                      overhead on E1 and the adaptive policy measured
//	                      against every static collector on the mixed
//	                      workloads (the CI BENCH_8.json artifact) and exit
//	-snapshot-cells PATH  write a JSON snapshot comparing the packed cell
//	                      representation against the boxed baseline machine
//	                      on the E1 workload — boxed-vs-packed rows per
//	                      collector × capacity × backend, bit-for-bit
//	                      counter identities, a co-check verification, and
//	                      the zero-allocation gates (the CI BENCH_9.json
//	                      artifact) — and exit
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"testing"

	"time"

	"psgc"
	"psgc/internal/baseline"
	"psgc/internal/gclang"
	"psgc/internal/gen"
	"psgc/internal/names"
	"psgc/internal/obs"
	"psgc/internal/policy"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/tags"
	"psgc/internal/workload"
)

var experiments = []struct {
	id   string
	name string
	run  func()
}{
	{"e1", "basic collection across capacities", e1},
	{"e2", "continuation-region bound (§6.1)", e2},
	{"e3", "sharing: basic vs forwarding (§7)", e3},
	{"e4", "forwarding space overhead (§7 fn.1)", e4},
	{"e5", "generational minor collections (§8)", e5},
	{"e6", "decidability: normalization & checking cost (§6.5.1)", e6},
	{"e7", "empirical soundness counts", e7},
	{"e8", "code size: ITA library vs monomorphization (§2.1)", e8},
	{"e9", "mutator overhead of the region discipline (Fig. 3)", e9},
}

// runEngine is the engine every in-process experiment runs on, from -engine.
var runEngine psgc.Engine

// runBackend is the memory substrate every in-process experiment runs on,
// from -backend.
var runBackend regions.Backend

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc-bench: ")
	engineName := flag.String("engine", "env", "execution engine for in-process experiments: env or subst")
	backendName := flag.String("backend", "map", "memory substrate for in-process experiments: map or arena")
	remoteURL := flag.String("remote", "", "base URL of a running psgc-served; drives the experiment suite over HTTP with latency percentiles")
	gateURL := flag.String("gate", "", "base URL of a psgc-gate fleet front; a remote target on its own, a direct-vs-gate comparison with -remote")
	flag.IntVar(&remoteRetries, "retries", 4, "retry budget per remote request on 429/503/transport errors (jittered backoff, honors Retry-After)")
	snapshot := flag.String("snapshot", "", "write a JSON snapshot of the E1 workload under both engines to this path and exit")
	backendSnapshot := flag.String("snapshot-backend", "", "write a JSON snapshot comparing the map and arena backends on the E1 workload to this path and exit")
	fleetSnapshot := flag.String("snapshot-fleet", "", "write a fleet-mode JSON snapshot (latency percentiles through -gate or -remote) to this path and exit")
	policySnapshot := flag.String("snapshot-policy", "", "write a JSON snapshot of profiling overhead and adaptive-vs-static policy to this path and exit")
	cellsSnapshot := flag.String("snapshot-cells", "", "write a JSON snapshot comparing the packed cell representation against the boxed baseline to this path and exit")
	flag.Parse()
	var err error
	if runEngine, err = psgc.ParseEngine(*engineName); err != nil {
		log.Fatal(err)
	}
	if runBackend, err = regions.ParseBackend(*backendName); err != nil {
		log.Fatal(err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(*snapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *backendSnapshot != "" {
		if err := writeBackendSnapshot(*backendSnapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *policySnapshot != "" {
		if err := writePolicySnapshot(*policySnapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *cellsSnapshot != "" {
		if err := writeCellsSnapshot(*cellsSnapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	if *fleetSnapshot != "" {
		target := *gateURL
		if target == "" {
			target = *remoteURL
		}
		if target == "" {
			log.Fatal("-snapshot-fleet needs a target: pass -gate or -remote")
		}
		if err := writeFleetSnapshot(target, *gateURL, *fleetSnapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *remoteURL != "" || *gateURL != "" {
		base := *remoteURL
		if base == "" {
			base = *gateURL
		}
		remoteBench(base, want)
		if *remoteURL != "" && *gateURL != "" {
			remoteVsGate(*remoteURL, *gateURL)
		}
		return
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
}

// runDriver executes a single-collection workload driver on the selected
// engine.
func runDriver(c workload.CollectOnce, fuel int) (workload.RunStats, error) {
	if runEngine == psgc.EngineSubst {
		return c.Run(fuel)
	}
	return c.RunEnv(fuel)
}

var allocHeavy = workload.AllocHeavySrc(60)

// churnSrc is the E5 generational workload: a long-lived tower survives a
// churn loop of short-lived junk allocations.
func churnSrc(churn int) string {
	return fmt.Sprintf(`
fun tower (n : int) : int * (int * (int * int)) =
  (n, (n + 1, (n + 2, n + 3)))
fun churn (state : int * (int * (int * (int * int)))) : int =
  let n = fst state in
  let keep = snd state in
  if0 n then fst keep + fst (snd (snd keep))
  else let junk = (n, (n, n)) in churn (n - 1, keep)
do churn (%d, tower 10)
`, churn)
}

// e9Progs are the Fig. 3 mutator-overhead programs, also driven remotely.
var e9Progs = []struct {
	name string
	src  string
}{
	{"arith", "fun f (n : int) : int = if0 n then 0 else n + f (n - 1)\ndo f 40"},
	{"pairs", allocHeavy},
	{"closures", "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\ndo (twice (fn (y : int) => y + 3)) 10"},
}

// e1: the basic collector keeps an allocation-heavy program's result
// intact while collecting, across capacities.
func e1() {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity | collector    | result ok | collections | puts | reclaimed | max live")
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: capacity, Engine: runEngine, Backend: runBackend})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d | %-12s | %9v | %11d | %4d | %9d | %8d\n",
				capacity, col, res.Value == want, res.Collections,
				res.Stats.Puts, res.Stats.CellsReclaimed, res.Stats.MaxLiveCells)
		}
	}
}

// e2: the CPS'd collector's temporary continuation region stays linear in
// the to-space (§6.1 claims the bound; Fig. 12 realizes ≤ 2·copied+1).
func e2() {
	fmt.Println("heap cells | copied | peak continuations | ratio")
	for _, n := range []int{16, 64, 256, 1024, 2048} {
		c, err := workload.BuildCollectOnce(gclang.Base, workload.List, n)
		if err != nil {
			log.Fatal(err)
		}
		st, err := runDriver(c, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d | %6d | %18d | %.2f\n", n, st.Copied, st.MaxCont,
			float64(st.MaxCont)/float64(st.Copied))
	}
}

// e3: DAG sharing — the §7 headline table.
func e3() {
	fmt.Println("depth | nodes | basic copies | forwarding copies | go-baseline (fwd) copies")
	for depth := 2; depth <= 10; depth += 2 {
		b, err := workload.BuildCollectOnce(gclang.Base, workload.DAG, depth)
		if err != nil {
			log.Fatal(err)
		}
		bs, err := runDriver(b, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		f, err := workload.BuildCollectOnce(gclang.Forw, workload.DAG, depth)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := runDriver(f, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d | %5d | %12d | %17d | %d\n",
			depth, depth+1, bs.Copied, fs.Copied, depth+1)
	}
}

// e4: space overhead of the paper's 1-bit scheme vs the Wang–Appel
// pair-per-object forwarding slot.
func e4() {
	fmt.Println("objects | 1-bit overhead (words) | paired overhead (words) | paper's saving")
	for _, n := range []int{64, 1024, 16384, 262144} {
		m := baseline.SpaceOverhead(n)
		fmt.Printf("%7d | %22d | %23d | %.0fx\n",
			m.Objects, m.TagBitsWords, m.PairedWords,
			float64(m.PairedWords)/float64(m.TagBitsWords))
	}
}

// e5: generational collection — total allocation falls as the long-lived
// fraction grows, because minor collections stop at the old generation.
func e5() {
	fmt.Println("churn | collector    | collections | total puts | reclaimed")
	for _, churn := range []int{40, 80, 160} {
		src := churnSrc(churn)
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Generational} {
			c, err := psgc.Compile(src, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 48, Engine: runEngine, Backend: runBackend})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d | %-12s | %11d | %10d | %9d\n",
				churn, col, res.Collections, res.Stats.Puts, res.Stats.CellsReclaimed)
		}
	}
}

// e6: tag normalization and whole-program typechecking stay fast as terms
// grow — the operational face of decidability (Props. 6.1, 6.2).
func e6() {
	fmt.Println("tag size | normalize time")
	for _, n := range []int{64, 256, 1024, 4096} {
		tag := tags.Tag(tags.Int{})
		for i := 1; i < n; i++ {
			tag = tags.Prod{L: tags.Int{}, R: tag}
		}
		// Wrap in β-redexes to give the normalizer work.
		for i := 0; i < 8; i++ {
			tag = tags.App{Fn: tags.Lam{Param: "u", Body: tags.Var{Name: "u"}}, Arg: tag}
		}
		start := time.Now()
		if _, err := tags.Normalize(tag); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d | %s\n", n, time.Since(start))
	}
	fmt.Println("program size | compile+typecheck time")
	r := rand.New(rand.NewSource(42))
	for _, cfg := range []gen.Config{
		{MaxDepth: 3, MaxFuns: 2, Recursion: 3},
		{MaxDepth: 5, MaxFuns: 3, Recursion: 3},
		{MaxDepth: 7, MaxFuns: 4, Recursion: 3},
	} {
		p := gen.Program(r, cfg)
		start := time.Now()
		if _, err := psgc.CompileProgram(p, psgc.Basic); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d | %s\n", source.ProgramSize(p), time.Since(start))
	}
}

// e7: empirical soundness — random programs, per-step state re-checking.
func e7() {
	r := rand.New(rand.NewSource(7))
	cfg := gen.Config{MaxDepth: 4, MaxFuns: 2, Recursion: 3}
	fmt.Println("collector    | programs | states checked | violations")
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		programs, states := 0, 0
		for i := 0; programs < 4 && i < 60; i++ {
			p := gen.Program(r, cfg)
			ev := source.Evaluator{Fuel: 30_000}
			if _, err := ev.RunInt(p); err != nil {
				continue
			}
			c, err := psgc.CompileProgram(p, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 16, CheckEveryStep: true, Fuel: 2_000_000, Backend: runBackend})
			if err != nil {
				log.Fatalf("%v: soundness violation: %v", col, err)
			}
			programs++
			states += res.Steps
		}
		fmt.Printf("%-12s | %8d | %14d | 0\n", col, programs, states)
	}
}

// e8: code size — the ITA collector is a constant-size library while
// monomorphization grows with the number of distinct types.
func e8() {
	r := rand.New(rand.NewSource(8))
	fmt.Println("program size | distinct types (≈ specialized copies) | ITA blocks")
	for _, cfg := range []gen.Config{
		{MaxDepth: 3, MaxFuns: 1, Recursion: 3},
		{MaxDepth: 4, MaxFuns: 2, Recursion: 3},
		{MaxDepth: 5, MaxFuns: 3, Recursion: 3},
		{MaxDepth: 6, MaxFuns: 4, Recursion: 3},
	} {
		p := gen.Program(r, cfg)
		c, err := psgc.CompileProgram(p, psgc.Basic)
		if err != nil {
			log.Fatal(err)
		}
		n := baseline.SpecializationCount(c.Clos)
		fmt.Printf("%12d | %38d | %d\n", source.ProgramSize(p), n, baseline.ITACollectorBlocks)
	}
}

// e9: the region discipline's mutator overhead — machine steps of the
// compiled λGC program (without any collection) versus the λCLOS
// reference machine.
func e9() {
	fmt.Println("program  | λGC steps | puts | gets")
	for _, p := range e9Progs {
		c, err := psgc.Compile(p.src, psgc.Basic)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(psgc.RunOptions{Capacity: 0, Engine: runEngine, Backend: runBackend}) // no collections
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s | %9d | %4d | %4d\n", p.name, res.Steps, res.Stats.Puts, res.Stats.Gets)
	}
}

// ---------------------------------------------------------------------------
// Remote mode and snapshot emission
// ---------------------------------------------------------------------------

// remoteRunRequest mirrors the service's RunRequest wire shape (the bench
// binary deliberately doesn't import internal/service: it exercises the
// HTTP surface a real client sees).
type remoteRunRequest struct {
	Source    string `json:"source"`
	Collector string `json:"collector"`
	Engine    string `json:"engine"`
	Backend   string `json:"backend,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Capacity  *int   `json:"capacity,omitempty"`
	CoCheck   bool   `json:"cocheck,omitempty"`
}

type remoteRunStats struct {
	Steps          int `json:"steps"`
	Collections    int `json:"collections"`
	Puts           int `json:"puts"`
	CellsReclaimed int `json:"cells_reclaimed"`
	MaxLiveCells   int `json:"max_live_cells"`
}

type remoteRunResponse struct {
	Value     int            `json:"value"`
	Engine    string         `json:"engine"`
	Backend   string         `json:"backend"`
	Cached    bool           `json:"cached"`
	RunMs     float64        `json:"run_ms"`
	CoChecked bool           `json:"cochecked"`
	Diverged  bool           `json:"diverged"`
	Stats     remoteRunStats `json:"stats"`
}

type remoteCompileRequest struct {
	Source    string `json:"source"`
	Collector string `json:"collector"`
}

type remoteCompileResponse struct {
	SourceHash string  `json:"source_hash"`
	Cached     bool    `json:"cached"`
	CodeBlocks int     `json:"code_blocks"`
	CompileMs  float64 `json:"compile_ms"`
}

// remoteRetries is the -retries budget for postWithRetry.
var remoteRetries int

// postWithRetry posts body to url, retrying transport errors and 429/503
// responses with jittered exponential backoff. A Retry-After header, when
// present and parseable, overrides the computed backoff (capped at 5s so a
// pathological server cannot stall the bench). The rng is seeded by the
// caller so retry schedules are reproducible run to run.
func postWithRetry(client *http.Client, url string, body []byte, rng *rand.Rand) (*http.Response, error) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				if d := time.Duration(secs) * time.Second; d < maxBackoff {
					backoff = d
				} else {
					backoff = maxBackoff
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			return resp, nil
		}
		if attempt >= remoteRetries {
			return nil, fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
		}
		// Full jitter on top of the exponential base spreads retries from
		// concurrent bench runs instead of synchronizing them.
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// percentile returns the p-th percentile (0 < p ≤ 1) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// remoteTarget wraps one HTTP surface — a psgc-served backend or a
// psgc-gate fleet front — for latency sampling. Both speak the same
// /run, /compile, and /batch protocol, so every remote experiment works
// against either.
type remoteTarget struct {
	base   string
	client *http.Client
	rng    *rand.Rand
}

func newRemoteTarget(base string) *remoteTarget {
	return &remoteTarget{
		base:   base,
		client: &http.Client{Timeout: 60 * time.Second},
		rng:    rand.New(rand.NewSource(1)),
	}
}

// runOnce posts one /run request, returning the decoded response, the
// HTTP status, and the end-to-end request latency in milliseconds
// (including any retries postWithRetry performed).
func (t *remoteTarget) runOnce(req remoteRunRequest) (remoteRunResponse, int, float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return remoteRunResponse{}, 0, 0, err
	}
	t0 := time.Now()
	resp, err := postWithRetry(t.client, t.base+"/run", body, t.rng)
	if err != nil {
		return remoteRunResponse{}, 0, 0, err
	}
	defer resp.Body.Close()
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return remoteRunResponse{}, resp.StatusCode, ms, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var rr remoteRunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return remoteRunResponse{}, resp.StatusCode, ms, err
	}
	return rr, resp.StatusCode, ms, nil
}

// compileOnce posts one /compile request.
func (t *remoteTarget) compileOnce(req remoteCompileRequest) (remoteCompileResponse, float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return remoteCompileResponse{}, 0, err
	}
	t0 := time.Now()
	resp, err := postWithRetry(t.client, t.base+"/compile", body, t.rng)
	if err != nil {
		return remoteCompileResponse{}, 0, err
	}
	defer resp.Body.Close()
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return remoteCompileResponse{}, ms, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var cr remoteCompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return remoteCompileResponse{}, ms, err
	}
	return cr, ms, nil
}

// sample measures warmup+n /run requests, passing every decoded response
// through check (when non-nil), and returns the sorted post-warmup
// latencies alongside the last response.
func (t *remoteTarget) sample(req remoteRunRequest, warmup, n int, check func(remoteRunResponse) error) ([]float64, remoteRunResponse, error) {
	lat := make([]float64, 0, n)
	var last remoteRunResponse
	for i := 0; i < warmup+n; i++ {
		rr, status, ms, err := t.runOnce(req)
		if err != nil {
			return nil, last, fmt.Errorf("request %d (status %d): %w", i, status, err)
		}
		if check != nil {
			if err := check(rr); err != nil {
				return nil, last, fmt.Errorf("request %d: %w", i, err)
			}
		}
		last = rr
		if i >= warmup {
			lat = append(lat, ms)
		}
	}
	sort.Float64s(lat)
	return lat, last, nil
}

// pcts reports the p50/p90/p99 of sorted latency samples.
func pcts(sorted []float64) (p50, p90, p99 float64) {
	return percentile(sorted, 0.50), percentile(sorted, 0.90), percentile(sorted, 0.99)
}

// remoteExperiments mirrors the experiments table over the HTTP surface.
// Experiments whose instrumentation lives inside the abstract machine
// (continuation-region peaks, forwarding-slot accounting, specialization
// counts) print their local tables behind an explanatory note instead.
var remoteExperiments = []struct {
	id   string
	name string
	run  func(*remoteTarget)
}{
	{"e1", "basic collection across capacities", remoteE1},
	{"e2", "continuation-region bound (§6.1)", remoteLocalOnly("the continuation-region peak instruments the abstract machine directly", e2)},
	{"e3", "sharing: basic vs forwarding (§7)", remoteE3},
	{"e4", "forwarding space overhead (§7 fn.1)", remoteLocalOnly("a static model, nothing to execute remotely", e4)},
	{"e5", "generational minor collections (§8)", remoteE5},
	{"e6", "decidability: compile & typecheck cost (§6.5.1)", remoteE6},
	{"e7", "empirical soundness via the oracle co-check", remoteE7},
	{"e8", "code size: ITA library vs monomorphization (§2.1)", remoteLocalOnly("specialization counting inspects compiled code in process", e8)},
	{"e9", "mutator overhead of the region discipline (Fig. 3)", remoteE9},
}

// remoteBench drives the experiment suite through a running psgc-served
// instance (or a psgc-gate front): behavioural statistics from the
// server's responses next to end-to-end latency percentiles.
func remoteBench(base string, want map[string]bool) {
	t := newRemoteTarget(base)
	fmt.Printf("remote target %s\n\n", base)
	for _, e := range remoteExperiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s (remote): %s ==\n", e.id, e.name)
		e.run(t)
		fmt.Println()
	}
}

// remoteLocalOnly wraps an in-process experiment for the remote table list.
func remoteLocalOnly(reason string, run func()) func(*remoteTarget) {
	return func(*remoteTarget) {
		fmt.Printf("(in-process only: %s; local table follows)\n", reason)
		run()
	}
}

// remoteE1: the allocation-heavy workload per collector × engine, with the
// in-process run time of the same program as a reference point.
func remoteE1(t *remoteTarget) {
	const (
		warmup   = 3
		requests = 30
		capacity = 32
	)
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d requests per row after %d warmups, capacity %d\n", requests, warmup, capacity)
	fmt.Println("collector    | engine | in-proc ms | remote p50 | p90 | p99 | ok")
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		for _, eng := range []string{"env", "subst"} {
			// In-process reference number for the same program and engine.
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				log.Fatal(err)
			}
			e, _ := psgc.ParseEngine(eng)
			t0 := time.Now()
			res, err := c.Run(psgc.RunOptions{Capacity: capacity, Engine: e, Backend: runBackend})
			if err != nil {
				log.Fatal(err)
			}
			inProcMs := float64(time.Since(t0)) / float64(time.Millisecond)
			ok := res.Value == want

			cp := capacity
			lat, _, err := t.sample(remoteRunRequest{
				Source: allocHeavy, Collector: col.String(), Engine: eng, Capacity: &cp,
			}, warmup, requests, func(rr remoteRunResponse) error {
				if rr.Value != want || rr.Engine != eng {
					ok = false
				}
				return nil
			})
			if err != nil {
				log.Fatalf("remote e1: %v", err)
			}
			p50, p90, p99 := pcts(lat)
			fmt.Printf("%-12s | %-6s | %10.3f | %10.3f | %7.3f | %7.3f | %v\n",
				col, eng, inProcMs, p50, p90, p99, ok)
		}
	}
}

// remoteE3: the §7 sharing claim over the wire. workload.SharedDAGSrc
// rebuilds a four-pointer fan-in to one shared tower; at a capacity where
// both collectors perform the same single collection, the basic collector
// copies the tower once per path and so allocates strictly more.
func remoteE3(t *remoteTarget) {
	const (
		warmup   = 1
		requests = 8
	)
	fmt.Println("churn | capacity | collector  | collections | puts | max live | p50 | p90 | p99 | ok")
	for _, cfg := range []struct{ churn, capacity int }{{200, 2048}, {400, 4096}} {
		src := workload.SharedDAGSrc(cfg.churn)
		want, err := psgc.Interpret(src)
		if err != nil {
			log.Fatal(err)
		}
		var puts [2]int
		for i, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding} {
			cp := cfg.capacity
			okAll := true
			lat, last, err := t.sample(remoteRunRequest{
				Source: src, Collector: col.String(), Engine: "env", Capacity: &cp,
			}, warmup, requests, func(rr remoteRunResponse) error {
				okAll = okAll && rr.Value == want
				return nil
			})
			if err != nil {
				log.Fatalf("remote e3: %v", err)
			}
			puts[i] = last.Stats.Puts
			p50, p90, p99 := pcts(lat)
			fmt.Printf("%5d | %8d | %-10s | %11d | %4d | %8d | %7.3f | %7.3f | %7.3f | %v\n",
				cfg.churn, cfg.capacity, col, last.Stats.Collections, last.Stats.Puts,
				last.Stats.MaxLiveCells, p50, p90, p99, okAll)
		}
		fmt.Printf("      -> basic allocated %d more cells than forwarding (sharing lost: the shared tower is copied once per path)\n",
			puts[0]-puts[1])
	}
}

// remoteE5: the generational workload per collector, with latency.
func remoteE5(t *remoteTarget) {
	const (
		warmup   = 1
		requests = 8
	)
	fmt.Println("churn | collector    | collections | puts | reclaimed | p50 | p90 | p99")
	for _, churn := range []int{40, 160} {
		src := churnSrc(churn)
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Generational} {
			cp := 48
			lat, last, err := t.sample(remoteRunRequest{
				Source: src, Collector: col.String(), Engine: "env", Capacity: &cp,
			}, warmup, requests, nil)
			if err != nil {
				log.Fatalf("remote e5: %v", err)
			}
			p50, p90, p99 := pcts(lat)
			fmt.Printf("%5d | %-12s | %11d | %4d | %9d | %7.3f | %7.3f | %7.3f\n",
				churn, col, last.Stats.Collections, last.Stats.Puts,
				last.Stats.CellsReclaimed, p50, p90, p99)
		}
	}
}

// remoteE6: compile-and-typecheck cost over the wire. Fresh random
// programs pay the full pipeline (the server reports its own compile
// span); repeating the last program shows the compiled-program cache.
func remoteE6(t *remoteTarget) {
	r := rand.New(rand.NewSource(42))
	fmt.Println("max depth | avg program size | fresh | cached | server compile ms p50 | p99 | cached repeat wall ms")
	for _, cfg := range []gen.Config{
		{MaxDepth: 3, MaxFuns: 2, Recursion: 3},
		{MaxDepth: 5, MaxFuns: 3, Recursion: 3},
		{MaxDepth: 7, MaxFuns: 4, Recursion: 3},
	} {
		const programs = 6
		sizes, cachedHits := 0, 0
		comp := make([]float64, 0, programs)
		var lastSrc string
		for i := 0; i < programs; i++ {
			p := gen.Program(r, cfg)
			sizes += source.ProgramSize(p)
			lastSrc = p.String()
			cr, _, err := t.compileOnce(remoteCompileRequest{Source: lastSrc, Collector: "basic"})
			if err != nil {
				log.Fatalf("remote e6: %v", err)
			}
			if cr.Cached {
				cachedHits++
				continue
			}
			comp = append(comp, cr.CompileMs)
		}
		cr, repeatMs, err := t.compileOnce(remoteCompileRequest{Source: lastSrc, Collector: "basic"})
		if err != nil {
			log.Fatalf("remote e6 repeat: %v", err)
		}
		if !cr.Cached {
			log.Fatalf("remote e6: repeated compile of an identical program was not served from cache")
		}
		sort.Float64s(comp)
		fmt.Printf("%9d | %16d | %5d | %6d | %21.3f | %8.3f | %.3f\n",
			cfg.MaxDepth, sizes/programs, len(comp), cachedHits,
			percentile(comp, 0.50), percentile(comp, 0.99), repeatMs)
	}
}

// remoteE7: empirical soundness over the wire — random programs run with
// the oracle co-check forced (?cocheck equivalent); the local reference
// evaluator's value must agree with the remote answer, and the server
// must report zero divergences between its engines.
func remoteE7(t *remoteTarget) {
	r := rand.New(rand.NewSource(7))
	cfg := gen.Config{MaxDepth: 4, MaxFuns: 2, Recursion: 3}
	programs, states, agree, cochecked, diverged := 0, 0, 0, 0, 0
	for i := 0; programs < 6 && i < 80; i++ {
		p := gen.Program(r, cfg)
		ev := source.Evaluator{Fuel: 30_000}
		want, err := ev.RunInt(p)
		if err != nil {
			continue
		}
		cp := 16
		rr, status, _, err := t.runOnce(remoteRunRequest{
			Source: p.String(), Collector: "basic", Engine: "env", Capacity: &cp, CoCheck: true,
		})
		if err != nil {
			log.Fatalf("remote e7 (status %d): %v", status, err)
		}
		programs++
		states += rr.Stats.Steps
		if rr.Value == want {
			agree++
		}
		if rr.CoChecked {
			cochecked++
		}
		if rr.Diverged {
			diverged++
		}
	}
	fmt.Printf("programs %d | machine states %d | oracle value agreements %d | cochecked %d | divergences %d\n",
		programs, states, agree, cochecked, diverged)
}

// remoteE9: the Fig. 3 mutator-overhead programs per engine, collection
// disabled (capacity 0), with steps and allocation from the server's
// statistics.
func remoteE9(t *remoteTarget) {
	const (
		warmup   = 2
		requests = 12
	)
	fmt.Println("program  | engine | λGC steps | puts | p50 | p90 | p99")
	for _, p := range e9Progs {
		for _, eng := range []string{"env", "subst"} {
			cp := 0 // disables collection, as in the local table
			lat, last, err := t.sample(remoteRunRequest{
				Source: p.src, Collector: "basic", Engine: eng, Capacity: &cp,
			}, warmup, requests, nil)
			if err != nil {
				log.Fatalf("remote e9: %v", err)
			}
			p50, p90, p99 := pcts(lat)
			fmt.Printf("%-8s | %-6s | %9d | %4d | %7.3f | %7.3f | %7.3f\n",
				p.name, eng, last.Stats.Steps, last.Stats.Puts, p50, p90, p99)
		}
	}
}

// remoteVsGate measures the E1 workload against one backend directly and
// through the gate, then prints the gate's own routing counters. The gate
// overhead column is the p50 difference: consistent-hash lookup plus one
// proxied hop.
func remoteVsGate(directURL, gateURL string) {
	const (
		warmup   = 2
		requests = 20
		capacity = 32
	)
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		log.Fatal(err)
	}
	direct, via := newRemoteTarget(directURL), newRemoteTarget(gateURL)
	fmt.Printf("== remote vs gate: E1 workload, %d requests per row ==\n", requests)
	fmt.Printf("direct %s | gate %s\n", directURL, gateURL)
	fmt.Println("collector    | engine | direct p50 | p99 | gate p50 | p99 | gate overhead p50")
	check := func(rr remoteRunResponse) error {
		if rr.Value != want {
			return fmt.Errorf("value %d, want %d", rr.Value, want)
		}
		return nil
	}
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		for _, eng := range []string{"env", "subst"} {
			cp := capacity
			req := remoteRunRequest{Source: allocHeavy, Collector: col.String(), Engine: eng, Capacity: &cp}
			dl, _, err := direct.sample(req, warmup, requests, check)
			if err != nil {
				log.Fatalf("direct: %v", err)
			}
			gl, _, err := via.sample(req, warmup, requests, check)
			if err != nil {
				log.Fatalf("gate: %v", err)
			}
			d50, _, d99 := pcts(dl)
			g50, _, g99 := pcts(gl)
			fmt.Printf("%-12s | %-6s | %10.3f | %7.3f | %8.3f | %7.3f | %+.3f\n",
				col, eng, d50, d99, g50, g99, g50-d50)
		}
	}
	snap, err := gateMetricsJSON(gateURL)
	if err != nil {
		log.Printf("gate metrics unavailable: %v", err)
		return
	}
	var m struct {
		Retries   int64 `json:"retries"`
		Rebal     int64 `json:"ring_rebalances"`
		PeerCache struct {
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"peer_cache"`
		BackendRequests map[string]int64 `json:"backend_requests"`
	}
	if err := json.Unmarshal(snap, &m); err != nil {
		log.Printf("gate metrics: %v", err)
		return
	}
	fmt.Printf("gate counters: retries %d | ring rebalances %d | peer cache %d/%d (hit ratio %.2f)\n",
		m.Retries, m.Rebal, m.PeerCache.Hits, m.PeerCache.Hits+m.PeerCache.Misses, m.PeerCache.HitRatio)
	keys := make([]string, 0, len(m.BackendRequests))
	for k := range m.BackendRequests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  backend %s: %d requests\n", k, m.BackendRequests[k])
	}
}

// gateMetricsJSON fetches a gate's /metrics snapshot as raw JSON.
func gateMetricsJSON(gateURL string) (json.RawMessage, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(gateURL + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// snapshotRow is one E1 configuration measured under one engine.
type snapshotRow struct {
	Capacity    int     `json:"capacity"`
	Collector   string  `json:"collector"`
	Engine      string  `json:"engine"`
	Value       int     `json:"value"`
	ResultOK    bool    `json:"result_ok"`
	Steps       int     `json:"steps"`
	Collections int     `json:"collections"`
	Puts        int     `json:"puts"`
	Reclaimed   int     `json:"reclaimed"`
	MaxLive     int     `json:"max_live"`
	RunMs       float64 `json:"run_ms"`
}

type snapshotFile struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	// EnvSpeedupGeomean is the geometric mean over configurations of
	// subst-run-ms / env-run-ms (best of three runs each).
	EnvSpeedupGeomean float64       `json:"env_speedup_geomean"`
	Rows              []snapshotRow `json:"rows"`
}

// writeSnapshot runs the E1 workload under both engines and writes the
// BENCH_4.json artifact: per-configuration stats plus the headline
// env-over-subst speedup.
func writeSnapshot(path string) error {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		return err
	}
	snap := snapshotFile{Experiment: "e1", Workload: "allocHeavy (build 60)"}
	logSum, logN := 0.0, 0
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				return err
			}
			var pair [2]float64 // best-of-3 ms, indexed by engine
			for _, eng := range []psgc.Engine{psgc.EngineEnv, psgc.EngineSubst} {
				best := math.Inf(1)
				var res psgc.Result
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					res, err = c.Run(psgc.RunOptions{Capacity: capacity, Engine: eng})
					if err != nil {
						return err
					}
					if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < best {
						best = ms
					}
				}
				pair[eng] = best
				snap.Rows = append(snap.Rows, snapshotRow{
					Capacity: capacity, Collector: col.String(), Engine: eng.String(),
					Value: res.Value, ResultOK: res.Value == want,
					Steps: res.Steps, Collections: res.Collections,
					Puts: res.Stats.Puts, Reclaimed: res.Stats.CellsReclaimed,
					MaxLive: res.Stats.MaxLiveCells, RunMs: best,
				})
			}
			if pair[psgc.EngineEnv] > 0 {
				logSum += math.Log(pair[psgc.EngineSubst] / pair[psgc.EngineEnv])
				logN++
			}
		}
	}
	if logN > 0 {
		snap.EnvSpeedupGeomean = math.Exp(logSum / float64(logN))
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, env speedup (geomean) %.2fx\n", path, len(snap.Rows), snap.EnvSpeedupGeomean)
	return nil
}

// fleetRow is one collector × engine configuration of the fleet snapshot:
// end-to-end latency percentiles through the fleet front.
type fleetRow struct {
	Collector string  `json:"collector"`
	Engine    string  `json:"engine"`
	Backend   string  `json:"backend"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	ResultOK  bool    `json:"result_ok"`
}

type fleetSnapshotFile struct {
	Experiment string     `json:"experiment"`
	Target     string     `json:"target"`
	Workload   string     `json:"workload"`
	Requests   int        `json:"requests_per_row"`
	Rows       []fleetRow `json:"rows"`
	// GateMetrics embeds the gate's /metrics snapshot (routing counters,
	// peer cache tier) when the snapshot target is a psgc-gate front.
	GateMetrics json.RawMessage `json:"gate_metrics,omitempty"`
}

// writeFleetSnapshot drives the E1 workload through target (a psgc-gate
// front or a bare backend) and writes the BENCH_6.json artifact: latency
// percentiles per collector × engine, plus the gate's own counters when
// gateURL is set.
func writeFleetSnapshot(target, gateURL, path string) error {
	const (
		warmup   = 2
		requests = 20
		capacity = 32
	)
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		return err
	}
	t := newRemoteTarget(target)
	snap := fleetSnapshotFile{
		Experiment: "e1-fleet",
		Target:     target,
		Workload:   "allocHeavy (build 60)",
		Requests:   requests,
	}
	// Rows alternate the memory backend so the fleet path exercises the
	// arena substrate end to end, not just the map default.
	fleetBackends := []string{"map", "arena"}
	row := 0
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		for _, eng := range []string{"env", "subst"} {
			cp := capacity
			be := fleetBackends[row%len(fleetBackends)]
			row++
			ok := true
			lat, _, err := t.sample(remoteRunRequest{
				Source: allocHeavy, Collector: col.String(), Engine: eng, Backend: be, Capacity: &cp,
			}, warmup, requests, func(rr remoteRunResponse) error {
				ok = ok && rr.Value == want && rr.Engine == eng && rr.Backend == be
				return nil
			})
			if err != nil {
				return fmt.Errorf("fleet snapshot %s/%s: %w", col, eng, err)
			}
			p50, p90, p99 := pcts(lat)
			snap.Rows = append(snap.Rows, fleetRow{
				Collector: col.String(), Engine: eng, Backend: be,
				P50Ms: p50, P90Ms: p90, P99Ms: p99, ResultOK: ok,
			})
		}
	}
	if gateURL != "" {
		gm, err := gateMetricsJSON(gateURL)
		if err != nil {
			return fmt.Errorf("gate metrics: %w", err)
		}
		snap.GateMetrics = gm
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	worst := 0.0
	for _, row := range snap.Rows {
		if row.P99Ms > worst {
			worst = row.P99Ms
		}
	}
	fmt.Printf("wrote %s: %d rows through %s, worst p99 %.3f ms\n", path, len(snap.Rows), target, worst)
	return nil
}

// backendRow is one E1 configuration measured on one memory backend
// (environment engine, best of three).
type backendRow struct {
	Capacity    int     `json:"capacity"`
	Collector   string  `json:"collector"`
	Backend     string  `json:"backend"`
	Value       int     `json:"value"`
	ResultOK    bool    `json:"result_ok"`
	Steps       int     `json:"steps"`
	Collections int     `json:"collections"`
	Puts        int     `json:"puts"`
	Reclaimed   int     `json:"reclaimed"`
	MaxLive     int     `json:"max_live"`
	RunMs       float64 `json:"run_ms"`
}

// replayRow is the substrate-isolated comparison for one collector: the
// E1 run's exact op sequence, recorded once, replayed on a fresh store of
// each substrate. Replay time is pure store cost — no machine
// interpretation — so this is where the substrate difference shows up
// undiluted. Three substrates run: the seed's string-keyed store
// (legacy-string, the baseline this PR's perf claim is measured against),
// the uint32-interned map backend, and the flat arena.
type replayRow struct {
	Collector     string  `json:"collector"`
	Ops           int     `json:"ops"`
	LegacyP50Ms   float64 `json:"legacy_p50_ms"`
	MapP50Ms      float64 `json:"map_p50_ms"`
	ArenaP50Ms    float64 `json:"arena_p50_ms"`
	ArenaVsLegacy float64 `json:"arena_vs_legacy"`
	ArenaVsMap    float64 `json:"arena_vs_map"`
}

type backendSnapshotFile struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	// IdentitiesOK reports that every whole-run row pair agrees bit for
	// bit across backends: value, steps, collections, and the full Stats
	// counters.
	IdentitiesOK bool `json:"identities_ok"`
	// CoCheckOK reports that one co-checked arena run per collector
	// finished without diverging from the map-substrate oracle.
	CoCheckOK bool `json:"cocheck_ok"`
	// ArenaOpSpeedupGeomean is the headline: the geometric mean over
	// collectors of legacy-p50 / arena-p50 on the replayed op trace, i.e.
	// the arena against the substrate this repository seeded with
	// (string-keyed map, O(live-regions) scan per Put) — the baseline this
	// PR's performance claim is made against.
	ArenaOpSpeedupGeomean float64 `json:"arena_op_speedup_geomean"`
	// ArenaVsMapOpGeomean compares the arena against the uint32-interned
	// map backend, which this PR also introduced: interning region names
	// to dense ids removed the string hash from the map's hot path too, so
	// the two refactored backends land close together and this hovers
	// near 1. The win over the seed substrate is shared, not arena-only.
	ArenaVsMapOpGeomean float64 `json:"arena_vs_map_op_speedup_geomean"`
	// ArenaRunSpeedupGeomean is the whole-run arena/map ratio for
	// honesty's sake: store ops are a small fraction of end-to-end machine
	// time (value resolution and host allocation dominate), so this
	// hovers near 1.
	ArenaRunSpeedupGeomean float64      `json:"arena_run_speedup_geomean"`
	Rows                   []backendRow `json:"rows"`
	Replay                 []replayRow  `json:"replay"`
}

// writeBackendSnapshot runs the E1 workload on both memory backends and
// writes the BENCH_7.json artifact: whole-run rows with counter
// identities, a co-check verification of the arena, and the op-trace
// replay that measures the substrate in isolation.
func writeBackendSnapshot(path string) error {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		return err
	}
	snap := backendSnapshotFile{
		Experiment:   "e1-backend",
		Workload:     "allocHeavy (build 60)",
		IdentitiesOK: true,
		CoCheckOK:    true,
	}
	backends := []regions.Backend{regions.BackendMap, regions.BackendArena}

	// Whole-run rows: best-of-3 per capacity x collector x backend on the
	// env engine, asserting the counter identities along the way.
	runLogSum, runLogN := 0.0, 0
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				return err
			}
			var pair [2]float64 // best-of-3 ms, indexed by backend
			var results [2]psgc.Result
			for _, be := range backends {
				best := math.Inf(1)
				var res psgc.Result
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					res, err = c.Run(psgc.RunOptions{Capacity: capacity, Backend: be})
					if err != nil {
						return err
					}
					if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < best {
						best = ms
					}
				}
				pair[be], results[be] = best, res
				snap.Rows = append(snap.Rows, backendRow{
					Capacity: capacity, Collector: col.String(), Backend: be.String(),
					Value: res.Value, ResultOK: res.Value == want,
					Steps: res.Steps, Collections: res.Collections,
					Puts: res.Stats.Puts, Reclaimed: res.Stats.CellsReclaimed,
					MaxLive: res.Stats.MaxLiveCells, RunMs: best,
				})
			}
			if results[regions.BackendMap] != results[regions.BackendArena] {
				snap.IdentitiesOK = false
				fmt.Printf("IDENTITY VIOLATION at capacity %d, %s:\n  map   %+v\n  arena %+v\n",
					capacity, col, results[regions.BackendMap], results[regions.BackendArena])
			}
			if pair[regions.BackendArena] > 0 {
				runLogSum += math.Log(pair[regions.BackendMap] / pair[regions.BackendArena])
				runLogN++
			}
		}
	}
	if runLogN > 0 {
		snap.ArenaRunSpeedupGeomean = math.Exp(runLogSum / float64(runLogN))
	}

	// Substrate-isolated replay plus the co-check verification, per
	// collector: record the op trace from one arena run under the map
	// oracle, then replay the identical sequence on fresh stores.
	const replayCapacity, replayReps = 32, 25
	legacyLogSum, mapLogSum, opLogN := 0.0, 0.0, 0
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		c, err := psgc.Compile(allocHeavy, col)
		if err != nil {
			return err
		}
		var tr *regions.Trace[gclang.Cell]
		diverged := false
		_, err = c.Run(psgc.RunOptions{
			Capacity:     replayCapacity,
			Backend:      regions.BackendArena,
			CoCheck:      true,
			OnDivergence: func(psgc.Divergence) { diverged = true },
			WrapStore: func(s regions.Store[gclang.Cell]) regions.Store[gclang.Cell] {
				tr = regions.NewTrace(s)
				return tr
			},
		})
		if err != nil {
			return fmt.Errorf("co-checked trace run (%s): %w", col, err)
		}
		if diverged {
			snap.CoCheckOK = false
			fmt.Printf("CO-CHECK DIVERGENCE on the arena backend (%s)\n", col)
		}
		// The machine loads its code into cd during construction, before
		// the trace wrapper attaches, so the recorded ops assume a
		// populated cd. Re-seed it (untimed) before each replay.
		cdSize := tr.Inner.Size(regions.CD)
		seedCD := func(s regions.Store[gclang.Cell]) {
			for off := 0; off < cdSize; off++ {
				if v, ok := tr.Inner.Peek(regions.Addr{Region: regions.CD, Off: off}); ok {
					s.Put(regions.CD, v)
				}
			}
		}
		oneReplay := func(be regions.Backend) (float64, error) {
			var s regions.Store[gclang.Cell]
			if be == regions.BackendLegacyString {
				s = regions.NewLegacyString[gclang.Cell](replayCapacity)
			} else {
				s = regions.NewStore[gclang.Cell](be, replayCapacity)
			}
			s.SetAutoGrow(true)
			seedCD(s)
			t0 := time.Now()
			if err := regions.Replay(tr.Ops, s); err != nil {
				return 0, fmt.Errorf("replay on %s (%s): %w", be, col, err)
			}
			return float64(time.Since(t0)) / float64(time.Millisecond), nil
		}
		// The reps interleave the substrates so host-GC drift over the
		// measurement window biases no side; the first (warmup) round is
		// discarded and the p50 is taken per substrate.
		replayBackends := []regions.Backend{
			regions.BackendLegacyString, regions.BackendMap, regions.BackendArena,
		}
		times := map[regions.Backend][]float64{}
		for rep := 0; rep < replayReps+1; rep++ {
			for _, be := range replayBackends {
				ms, err := oneReplay(be)
				if err != nil {
					return err
				}
				if rep > 0 {
					times[be] = append(times[be], ms)
				}
			}
		}
		p50 := func(be regions.Backend) float64 {
			ts := times[be]
			sort.Float64s(ts)
			return ts[len(ts)/2]
		}
		legacyMs := p50(regions.BackendLegacyString)
		mapMs, arenaMs := p50(regions.BackendMap), p50(regions.BackendArena)
		vsLegacy, vsMap := 0.0, 0.0
		if arenaMs > 0 {
			vsLegacy, vsMap = legacyMs/arenaMs, mapMs/arenaMs
			legacyLogSum += math.Log(vsLegacy)
			mapLogSum += math.Log(vsMap)
			opLogN++
		}
		snap.Replay = append(snap.Replay, replayRow{
			Collector: col.String(), Ops: len(tr.Ops),
			LegacyP50Ms: legacyMs, MapP50Ms: mapMs, ArenaP50Ms: arenaMs,
			ArenaVsLegacy: vsLegacy, ArenaVsMap: vsMap,
		})
	}
	if opLogN > 0 {
		snap.ArenaOpSpeedupGeomean = math.Exp(legacyLogSum / float64(opLogN))
		snap.ArenaVsMapOpGeomean = math.Exp(mapLogSum / float64(opLogN))
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, identities %v, cocheck %v, arena op speedup vs seed substrate (geomean) %.2fx, vs map backend %.2fx, whole-run %.2fx\n",
		path, len(snap.Rows), snap.IdentitiesOK, snap.CoCheckOK,
		snap.ArenaOpSpeedupGeomean, snap.ArenaVsMapOpGeomean, snap.ArenaRunSpeedupGeomean)
	return nil
}

// cellsRow is one E1 configuration measured under one cell representation
// (environment engine, best of three). Repr is "boxed" for the baseline
// machine over interface-boxed cells (gclang.Value heap) and "packed" for
// the production machine over the flat three-word gclang.Cell.
type cellsRow struct {
	Capacity      int     `json:"capacity"`
	Collector     string  `json:"collector"`
	Backend       string  `json:"backend"`
	Repr          string  `json:"repr"`
	Value         int     `json:"value"`
	ResultOK      bool    `json:"result_ok"`
	Steps         int     `json:"steps"`
	Collections   int     `json:"collections"`
	Puts          int     `json:"puts"`
	Reclaimed     int     `json:"reclaimed"`
	MaxLive       int     `json:"max_live"`
	RunMs         float64 `json:"run_ms"`
	PackedVsBoxed float64 `json:"packed_vs_boxed,omitempty"` // packed rows only
}

type cellsSnapshotFile struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	// IdentitiesOK reports that for every configuration the boxed and
	// packed runs agree bit for bit (value, steps, collections, the full
	// Stats counters) and that the packed map and packed arena runs agree
	// with each other — the packing is a representation change, not a
	// semantic one.
	IdentitiesOK bool `json:"identities_ok"`
	// CoCheckOK reports that one co-checked packed-arena run per collector
	// finished without diverging from the subst-machine oracle on the map
	// substrate.
	CoCheckOK bool `json:"cocheck_ok"`
	// ArenaAllocsPerOp is testing.AllocsPerRun over a warm arena
	// Put/Get/Set triple; StepAllocsPerOp is the same over five steps of a
	// warm environment-machine mutator loop. Both must be exactly zero —
	// the packed representation's contract is that the steady state
	// touches the host allocator not at all.
	ArenaAllocsPerOp float64 `json:"arena_allocs_per_op"`
	StepAllocsPerOp  float64 `json:"step_allocs_per_op"`
	AllocsOK         bool    `json:"allocs_ok"`
	// PackedVsBoxedArenaGeomean is the headline: the geometric mean over
	// collectors × capacities of boxed-ms / packed-ms on the arena
	// backend. The gate requires ≥ 1.5: the flat []Cell slab plus
	// zero-allocation stepping must beat the interface-boxed heap by half
	// again, or the packing refactor isn't paying for itself.
	PackedVsBoxedArenaGeomean float64 `json:"packed_vs_boxed_arena_geomean"`
	// PackedVsBoxedMapGeomean is the same ratio on the map backend, for
	// scale: the map substrate dilutes the win with hashing costs shared
	// by both representations.
	PackedVsBoxedMapGeomean float64    `json:"packed_vs_boxed_map_geomean"`
	Rows                    []cellsRow `json:"rows"`
}

// writeCellsSnapshot runs the E1 workload under both cell representations
// and writes the BENCH_9.json artifact: boxed-vs-packed rows per collector
// × capacity × backend with counter identities, a co-check verification of
// the packed arena, the zero-allocation gates, and the packed-vs-boxed
// geomeans.
func writeCellsSnapshot(path string) error {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		return err
	}
	snap := cellsSnapshotFile{
		Experiment:   "e1-cells",
		Workload:     "allocHeavy (build 60)",
		IdentitiesOK: true,
		CoCheckOK:    true,
	}
	backends := []regions.Backend{regions.BackendMap, regions.BackendArena}

	// Boxed-vs-packed rows: best-of-3 per capacity × collector × backend,
	// interleaving the representations so host-GC drift biases neither.
	var arenaLogSum, mapLogSum float64
	var arenaLogN, mapLogN int
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				return err
			}
			var packedRes [2]psgc.Result
			for _, be := range backends {
				opts := psgc.RunOptions{Capacity: capacity, Backend: be}
				bestBoxed, bestPacked := math.Inf(1), math.Inf(1)
				var boxedRes, packedOne psgc.Result
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					if boxedRes, err = c.RunBoxed(opts); err != nil {
						return err
					}
					if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < bestBoxed {
						bestBoxed = ms
					}
					t0 = time.Now()
					if packedOne, err = c.Run(opts); err != nil {
						return err
					}
					if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < bestPacked {
						bestPacked = ms
					}
				}
				packedRes[be] = packedOne
				if boxedRes != packedOne {
					snap.IdentitiesOK = false
					fmt.Printf("IDENTITY VIOLATION boxed vs packed at capacity %d, %s, %s:\n  boxed  %+v\n  packed %+v\n",
						capacity, col, be, boxedRes, packedOne)
				}
				ratio := 0.0
				if bestPacked > 0 {
					ratio = bestBoxed / bestPacked
					if be == regions.BackendArena {
						arenaLogSum += math.Log(ratio)
						arenaLogN++
					} else {
						mapLogSum += math.Log(ratio)
						mapLogN++
					}
				}
				row := cellsRow{
					Capacity: capacity, Collector: col.String(), Backend: be.String(),
					Steps: boxedRes.Steps, Collections: boxedRes.Collections,
					Puts: boxedRes.Stats.Puts, Reclaimed: boxedRes.Stats.CellsReclaimed,
					MaxLive: boxedRes.Stats.MaxLiveCells,
				}
				boxed, packed := row, row
				boxed.Repr, boxed.Value, boxed.ResultOK, boxed.RunMs = "boxed", boxedRes.Value, boxedRes.Value == want, bestBoxed
				packed.Repr, packed.Value, packed.ResultOK, packed.RunMs = "packed", packedOne.Value, packedOne.Value == want, bestPacked
				packed.PackedVsBoxed = ratio
				snap.Rows = append(snap.Rows, boxed, packed)
			}
			if packedRes[regions.BackendMap] != packedRes[regions.BackendArena] {
				snap.IdentitiesOK = false
				fmt.Printf("IDENTITY VIOLATION packed map vs arena at capacity %d, %s:\n  map   %+v\n  arena %+v\n",
					capacity, col, packedRes[regions.BackendMap], packedRes[regions.BackendArena])
			}
		}
	}
	if arenaLogN > 0 {
		snap.PackedVsBoxedArenaGeomean = math.Exp(arenaLogSum / float64(arenaLogN))
	}
	if mapLogN > 0 {
		snap.PackedVsBoxedMapGeomean = math.Exp(mapLogSum / float64(mapLogN))
	}

	// One co-checked packed-arena run per collector: the subst machine on
	// the map oracle steps in lockstep with the packed arena machine.
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		c, err := psgc.Compile(allocHeavy, col)
		if err != nil {
			return err
		}
		diverged := false
		if _, err := c.Run(psgc.RunOptions{
			Capacity: 32, Backend: regions.BackendArena,
			CoCheck:      true,
			OnDivergence: func(psgc.Divergence) { diverged = true },
		}); err != nil {
			return fmt.Errorf("co-checked packed-arena run (%s): %w", col, err)
		}
		if diverged {
			snap.CoCheckOK = false
			fmt.Printf("CO-CHECK DIVERGENCE on the packed arena (%s)\n", col)
		}
	}

	snap.ArenaAllocsPerOp = measureArenaAllocs()
	snap.StepAllocsPerOp = measureStepAllocs()
	snap.AllocsOK = snap.ArenaAllocsPerOp == 0 && snap.StepAllocsPerOp == 0

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, identities %v, cocheck %v, allocs/op arena %.1f step %.1f, packed vs boxed geomean arena %.2fx map %.2fx\n",
		path, len(snap.Rows), snap.IdentitiesOK, snap.CoCheckOK,
		snap.ArenaAllocsPerOp, snap.StepAllocsPerOp,
		snap.PackedVsBoxedArenaGeomean, snap.PackedVsBoxedMapGeomean)
	return nil
}

// measureArenaAllocs is the CI twin of the gclang zero-alloc test: a warm
// arena (both slabs sized by two junk-fill/scavenge flips) must serve a
// Put/Get/Set triple with zero host allocations.
func measureArenaAllocs() float64 {
	ar := regions.NewArena[gclang.Cell](0)
	keep := ar.NewRegion()
	const warm = 4096
	for i := 0; i < warm; i++ {
		ar.Put(keep, gclang.NumCell(i))
	}
	for flip := 0; flip < 2; flip++ {
		junk := ar.NewRegion()
		for i := 0; i < warm; i++ {
			ar.Put(junk, gclang.NumCell(i))
		}
		if err := ar.Only([]regions.Name{keep}); err != nil {
			panic(err)
		}
	}
	fresh := ar.NewRegion()
	var sink gclang.Cell
	allocs := testing.AllocsPerRun(100, func() {
		a, err := ar.Put(fresh, gclang.NumCell(7))
		if err != nil {
			panic(err)
		}
		c, err := ar.Get(a)
		if err != nil {
			panic(err)
		}
		if err := ar.Set(a, c); err != nil {
			panic(err)
		}
		sink = c
	})
	_ = sink
	return allocs
}

// measureStepAllocs steps a warm environment machine through a mutator
// loop (call, get, arith, set, branch) on the packed arena; the steady
// state must not touch the host allocator.
func measureStepAllocs() float64 {
	loop := gclang.LamV{RParams: []names.Name{"r"},
		Params: []gclang.Param{{Name: "x", Ty: gclang.IntT{}}, {Name: "a", Ty: gclang.IntT{}}},
		Body: gclang.LetT{X: "v", Op: gclang.GetOp{V: gclang.Var{Name: "a"}},
			Body: gclang.LetT{X: "y", Op: gclang.ArithOp{Kind: gclang.Sub, L: gclang.Var{Name: "x"}, R: gclang.Num{N: 1}},
				Body: gclang.SetT{Dst: gclang.Var{Name: "a"}, Src: gclang.Var{Name: "y"},
					Body: gclang.If0T{V: gclang.Var{Name: "y"},
						Then: gclang.HaltT{V: gclang.Var{Name: "y"}},
						Else: gclang.AppT{Fn: gclang.CodeAddr(0), Rs: []gclang.Region{gclang.RVar{Name: "r"}},
							Args: []gclang.Value{gclang.Var{Name: "y"}, gclang.Var{Name: "a"}}}}}}}}
	prog := gclang.Program{
		Code: []gclang.NamedFun{{Name: "loop", Fun: loop}},
		Main: gclang.LetRegionT{R: "r", Body: gclang.LetT{X: "a", Op: gclang.PutOp{R: gclang.RVar{Name: "r"}, V: gclang.Num{N: 0}},
			Body: gclang.AppT{Fn: gclang.CodeAddr(0), Rs: []gclang.Region{gclang.RVar{Name: "r"}},
				Args: []gclang.Value{gclang.Num{N: 1 << 30}, gclang.Var{Name: "a"}}}}}}
	m := gclang.NewEnvMachineOn(regions.BackendArena, gclang.Base, prog, 0)
	for i := 0; i < 200; i++ {
		if err := m.Step(); err != nil {
			panic(err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		for i := 0; i < 5; i++ {
			if err := m.Step(); err != nil {
				panic(err)
			}
		}
	})
}

// policyRow is one (workload, variant) measurement for BENCH_8: the three
// static collectors plus the adaptive policy, every run carrying the
// always-on profiler the service attaches, timed over interleaved reps.
type policyRow struct {
	Workload    string  `json:"workload"`
	Variant     string  `json:"variant"` // "basic"/"forwarding"/"generational"/"adaptive"
	Collector   string  `json:"collector"`
	Capacity    int     `json:"capacity"`
	Value       int     `json:"value"`
	ResultOK    bool    `json:"result_ok"`
	Collections int     `json:"collections"`
	P50Ms       float64 `json:"p50_ms"`
	// Reason is the decision rationale, adaptive rows only.
	Reason string `json:"reason,omitempty"`
}

type policySnapshotFile struct {
	Experiment string `json:"experiment"`
	// SamplingOverheadE1 is profiled-p50 / plain-p50 for the E1 workload
	// under the basic collector: the cost of leaving the event hook and
	// profiler on for every request. CI gates this at <= 1.02.
	SamplingOverheadE1 float64 `json:"sampling_overhead_e1"`
	PlainP50Ms         float64 `json:"plain_p50_ms"`
	ProfiledP50Ms      float64 `json:"profiled_p50_ms"`
	// AdaptiveVsBestStaticGeomean is the geometric mean over workloads of
	// best-static-p50 / adaptive-p50. 1.0 means adaptive ties the best
	// static choice per workload; CI gates this at >= 0.95. The adaptive
	// rows use the decided collector AND capacity — capacity sizing is part
	// of the policy's job — while statics run at the bench capacity.
	AdaptiveVsBestStaticGeomean float64 `json:"adaptive_vs_best_static_geomean"`
	// IdentitiesOK reports that per-run profile totals agree exactly with
	// the machine counters on every profiled measurement run: steps,
	// collections, allocs+copies vs puts-code, forwards vs sets, and
	// cells freed vs reclaimed.
	IdentitiesOK bool `json:"identities_ok"`
	// CoCheckOK reports that one co-checked adaptive run per workload
	// finished with the oracle's value and no divergence.
	CoCheckOK bool        `json:"cocheck_ok"`
	Rows      []policyRow `json:"rows"`
}

// profiledRun times one run with a fresh profiler attached and folds the
// profile/counter identity check into the measurement.
func profiledRun(c *psgc.Compiled, opts psgc.RunOptions, identitiesOK *bool) (psgc.Result, float64, error) {
	prof := c.Profiler()
	opts.Profiler = prof
	t0 := time.Now()
	res, err := c.Run(opts)
	if err != nil {
		return res, 0, err
	}
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	rp := prof.Profile()
	codePuts := len(c.Prog.Code)
	if rp.Steps != res.Steps ||
		rp.Collections != res.Collections ||
		rp.Allocs+rp.Copies != res.Stats.Puts-codePuts ||
		rp.Forwards != res.Stats.Sets ||
		rp.CellsFreed != res.Stats.CellsReclaimed {
		*identitiesOK = false
		fmt.Printf("PROFILE IDENTITY VIOLATION: profile %+v vs stats %+v\n", rp, res.Stats)
	}
	return res, ms, nil
}

// writePolicySnapshot measures the two BENCH_8 claims in process: the
// always-on profiler is cheap enough to leave on (interleaved profiled vs
// plain E1 reps), and the adaptive policy's choice of collector and
// capacity matches or beats every static collector per workload.
func writePolicySnapshot(path string) error {
	const benchCapacity = 32
	snap := policySnapshotFile{
		Experiment:   "e10-policy",
		IdentitiesOK: true,
		CoCheckOK:    true,
	}

	// Part 1: sampling overhead on E1. Plain and profiled runs interleave
	// so host-GC drift biases neither side; first round is warmup.
	c, err := psgc.Compile(allocHeavy, psgc.Basic)
	if err != nil {
		return err
	}
	const overheadReps = 30
	var plain, profiled []float64
	for rep := 0; rep < overheadReps+1; rep++ {
		t0 := time.Now()
		if _, err := c.Run(psgc.RunOptions{Capacity: benchCapacity}); err != nil {
			return err
		}
		plainMs := float64(time.Since(t0)) / float64(time.Millisecond)
		_, profMs, err := profiledRun(c, psgc.RunOptions{Capacity: benchCapacity}, &snap.IdentitiesOK)
		if err != nil {
			return err
		}
		if rep > 0 {
			plain = append(plain, plainMs)
			profiled = append(profiled, profMs)
		}
	}
	p50 := func(ts []float64) float64 {
		sort.Float64s(ts)
		return ts[len(ts)/2]
	}
	snap.PlainP50Ms, snap.ProfiledP50Ms = p50(plain), p50(profiled)
	if snap.PlainP50Ms > 0 {
		snap.SamplingOverheadE1 = snap.ProfiledP50Ms / snap.PlainP50Ms
	}

	// Part 2: adaptive vs every static, per workload. The statics also
	// serve as the profile warm-up the decision reads, mirroring a service
	// node that has seen the program before.
	workloads := []struct {
		name string
		src  string
	}{
		{"alloc-heavy (build 60)", allocHeavy},
		{"shared-dag (churn 60)", workload.SharedDAGSrc(60)},
	}
	statics := []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational}
	const policyReps = 11
	logSum, logN := 0.0, 0
	for _, wl := range workloads {
		want, err := psgc.Interpret(wl.src)
		if err != nil {
			return err
		}
		eng := policy.NewEngine(obs.NewProfileStore(4))
		compiled := map[string]*psgc.Compiled{}
		for _, col := range statics {
			cc, err := psgc.Compile(wl.src, col)
			if err != nil {
				return err
			}
			compiled[col.String()] = cc
			// Warm the profile store (untimed).
			prof := cc.Profiler()
			if _, err := cc.Run(psgc.RunOptions{Capacity: benchCapacity, Profiler: prof}); err != nil {
				return err
			}
			eng.Observe(wl.name, col.String(), prof.Profile())
		}
		d := eng.Decide(wl.name, psgc.Basic.String(), benchCapacity)
		adaptive := compiled[d.Collector]
		adaptiveOpts := psgc.RunOptions{
			Capacity: d.Capacity, Policy: policy.Adaptive, Decision: &d,
		}

		// Co-check the adaptive configuration against the oracle once.
		diverged := false
		cocheckOpts := adaptiveOpts
		cocheckOpts.CoCheck = true
		cocheckOpts.OnDivergence = func(psgc.Divergence) { diverged = true }
		res, err := adaptive.Run(cocheckOpts)
		if err != nil || diverged || res.Value != want {
			snap.CoCheckOK = false
			fmt.Printf("CO-CHECK FAILURE under adaptive policy on %s: err=%v diverged=%v value=%d want=%d\n",
				wl.name, err, diverged, res.Value, want)
		}

		// Timed reps, all variants interleaved, every run profiled.
		times := map[string][]float64{}
		values := map[string]psgc.Result{}
		for rep := 0; rep < policyReps+1; rep++ {
			for _, col := range statics {
				res, ms, err := profiledRun(compiled[col.String()], psgc.RunOptions{Capacity: benchCapacity}, &snap.IdentitiesOK)
				if err != nil {
					return err
				}
				if rep > 0 {
					times[col.String()] = append(times[col.String()], ms)
				}
				values[col.String()] = res
			}
			res, ms, err := profiledRun(adaptive, adaptiveOpts, &snap.IdentitiesOK)
			if err != nil {
				return err
			}
			if rep > 0 {
				times["adaptive"] = append(times["adaptive"], ms)
			}
			values["adaptive"] = res
		}
		bestStatic := math.Inf(1)
		for _, col := range statics {
			ms := p50(times[col.String()])
			if ms < bestStatic {
				bestStatic = ms
			}
			res := values[col.String()]
			snap.Rows = append(snap.Rows, policyRow{
				Workload: wl.name, Variant: col.String(), Collector: col.String(),
				Capacity: benchCapacity, Value: res.Value, ResultOK: res.Value == want,
				Collections: res.Collections, P50Ms: ms,
			})
		}
		adaptiveMs := p50(times["adaptive"])
		resA := values["adaptive"]
		snap.Rows = append(snap.Rows, policyRow{
			Workload: wl.name, Variant: "adaptive", Collector: d.Collector,
			Capacity: d.Capacity, Value: resA.Value, ResultOK: resA.Value == want,
			Collections: resA.Collections, P50Ms: adaptiveMs, Reason: d.Reason,
		})
		if adaptiveMs > 0 {
			logSum += math.Log(bestStatic / adaptiveMs)
			logN++
		}
	}
	if logN > 0 {
		snap.AdaptiveVsBestStaticGeomean = math.Exp(logSum / float64(logN))
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, sampling overhead %.3fx, adaptive vs best static (geomean) %.3fx, identities %v, cocheck %v\n",
		path, len(snap.Rows), snap.SamplingOverheadE1, snap.AdaptiveVsBestStaticGeomean,
		snap.IdentitiesOK, snap.CoCheckOK)
	return nil
}
