// Command psgc-bench regenerates the per-experiment tables of DESIGN.md
// (E1–E9): the behavioural claims of "Principled Scavenging" measured on
// this reproduction. Run with no arguments for every experiment, or pass
// experiment ids (e1 … e9) to select.
//
// Additional modes:
//
//	-engine env|subst     execution engine for in-process experiments (default env)
//	-remote URL           also drive the E1 workload through a running psgc-served
//	                      instance and report latency percentiles next to the
//	                      in-process numbers
//	-snapshot PATH        write a JSON snapshot of the E1 workload under both
//	                      engines (the CI BENCH_4.json artifact) and exit
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"

	"time"

	"psgc"
	"psgc/internal/baseline"
	"psgc/internal/gclang"
	"psgc/internal/gen"
	"psgc/internal/source"
	"psgc/internal/tags"
	"psgc/internal/workload"
)

var experiments = []struct {
	id   string
	name string
	run  func()
}{
	{"e1", "basic collection across capacities", e1},
	{"e2", "continuation-region bound (§6.1)", e2},
	{"e3", "sharing: basic vs forwarding (§7)", e3},
	{"e4", "forwarding space overhead (§7 fn.1)", e4},
	{"e5", "generational minor collections (§8)", e5},
	{"e6", "decidability: normalization & checking cost (§6.5.1)", e6},
	{"e7", "empirical soundness counts", e7},
	{"e8", "code size: ITA library vs monomorphization (§2.1)", e8},
	{"e9", "mutator overhead of the region discipline (Fig. 3)", e9},
}

// runEngine is the engine every in-process experiment runs on, from -engine.
var runEngine psgc.Engine

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc-bench: ")
	engineName := flag.String("engine", "env", "execution engine for in-process experiments: env or subst")
	remoteURL := flag.String("remote", "", "base URL of a running psgc-served; adds remote latency percentiles to the E1 workload")
	flag.IntVar(&remoteRetries, "retries", 4, "retry budget per remote request on 429/503/transport errors (jittered backoff, honors Retry-After)")
	snapshot := flag.String("snapshot", "", "write a JSON snapshot of the E1 workload under both engines to this path and exit")
	flag.Parse()
	var err error
	if runEngine, err = psgc.ParseEngine(*engineName); err != nil {
		log.Fatal(err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(*snapshot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *remoteURL != "" {
		remoteBench(*remoteURL)
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
}

// runDriver executes a single-collection workload driver on the selected
// engine.
func runDriver(c workload.CollectOnce, fuel int) (workload.RunStats, error) {
	if runEngine == psgc.EngineSubst {
		return c.Run(fuel)
	}
	return c.RunEnv(fuel)
}

var allocHeavy = workload.AllocHeavySrc(60)

// e1: the basic collector keeps an allocation-heavy program's result
// intact while collecting, across capacities.
func e1() {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity | collector    | result ok | collections | puts | reclaimed | max live")
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: capacity, Engine: runEngine})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d | %-12s | %9v | %11d | %4d | %9d | %8d\n",
				capacity, col, res.Value == want, res.Collections,
				res.Stats.Puts, res.Stats.CellsReclaimed, res.Stats.MaxLiveCells)
		}
	}
}

// e2: the CPS'd collector's temporary continuation region stays linear in
// the to-space (§6.1 claims the bound; Fig. 12 realizes ≤ 2·copied+1).
func e2() {
	fmt.Println("heap cells | copied | peak continuations | ratio")
	for _, n := range []int{16, 64, 256, 1024, 2048} {
		c, err := workload.BuildCollectOnce(gclang.Base, workload.List, n)
		if err != nil {
			log.Fatal(err)
		}
		st, err := runDriver(c, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d | %6d | %18d | %.2f\n", n, st.Copied, st.MaxCont,
			float64(st.MaxCont)/float64(st.Copied))
	}
}

// e3: DAG sharing — the §7 headline table.
func e3() {
	fmt.Println("depth | nodes | basic copies | forwarding copies | go-baseline (fwd) copies")
	for depth := 2; depth <= 10; depth += 2 {
		b, err := workload.BuildCollectOnce(gclang.Base, workload.DAG, depth)
		if err != nil {
			log.Fatal(err)
		}
		bs, err := runDriver(b, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		f, err := workload.BuildCollectOnce(gclang.Forw, workload.DAG, depth)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := runDriver(f, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d | %5d | %12d | %17d | %d\n",
			depth, depth+1, bs.Copied, fs.Copied, depth+1)
	}
}

// e4: space overhead of the paper's 1-bit scheme vs the Wang–Appel
// pair-per-object forwarding slot.
func e4() {
	fmt.Println("objects | 1-bit overhead (words) | paired overhead (words) | paper's saving")
	for _, n := range []int{64, 1024, 16384, 262144} {
		m := baseline.SpaceOverhead(n)
		fmt.Printf("%7d | %22d | %23d | %.0fx\n",
			m.Objects, m.TagBitsWords, m.PairedWords,
			float64(m.PairedWords)/float64(m.TagBitsWords))
	}
}

// e5: generational collection — total allocation falls as the long-lived
// fraction grows, because minor collections stop at the old generation.
func e5() {
	fmt.Println("churn | collector    | collections | total puts | reclaimed")
	for _, churn := range []int{40, 80, 160} {
		src := fmt.Sprintf(`
fun tower (n : int) : int * (int * (int * int)) =
  (n, (n + 1, (n + 2, n + 3)))
fun churn (state : int * (int * (int * (int * int)))) : int =
  let n = fst state in
  let keep = snd state in
  if0 n then fst keep + fst (snd (snd keep))
  else let junk = (n, (n, n)) in churn (n - 1, keep)
do churn (%d, tower 10)
`, churn)
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Generational} {
			c, err := psgc.Compile(src, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 48, Engine: runEngine})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d | %-12s | %11d | %10d | %9d\n",
				churn, col, res.Collections, res.Stats.Puts, res.Stats.CellsReclaimed)
		}
	}
}

// e6: tag normalization and whole-program typechecking stay fast as terms
// grow — the operational face of decidability (Props. 6.1, 6.2).
func e6() {
	fmt.Println("tag size | normalize time")
	for _, n := range []int{64, 256, 1024, 4096} {
		tag := tags.Tag(tags.Int{})
		for i := 1; i < n; i++ {
			tag = tags.Prod{L: tags.Int{}, R: tag}
		}
		// Wrap in β-redexes to give the normalizer work.
		for i := 0; i < 8; i++ {
			tag = tags.App{Fn: tags.Lam{Param: "u", Body: tags.Var{Name: "u"}}, Arg: tag}
		}
		start := time.Now()
		if _, err := tags.Normalize(tag); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d | %s\n", n, time.Since(start))
	}
	fmt.Println("program size | compile+typecheck time")
	r := rand.New(rand.NewSource(42))
	for _, cfg := range []gen.Config{
		{MaxDepth: 3, MaxFuns: 2, Recursion: 3},
		{MaxDepth: 5, MaxFuns: 3, Recursion: 3},
		{MaxDepth: 7, MaxFuns: 4, Recursion: 3},
	} {
		p := gen.Program(r, cfg)
		start := time.Now()
		if _, err := psgc.CompileProgram(p, psgc.Basic); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d | %s\n", source.ProgramSize(p), time.Since(start))
	}
}

// e7: empirical soundness — random programs, per-step state re-checking.
func e7() {
	r := rand.New(rand.NewSource(7))
	cfg := gen.Config{MaxDepth: 4, MaxFuns: 2, Recursion: 3}
	fmt.Println("collector    | programs | states checked | violations")
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		programs, states := 0, 0
		for i := 0; programs < 4 && i < 60; i++ {
			p := gen.Program(r, cfg)
			ev := source.Evaluator{Fuel: 30_000}
			if _, err := ev.RunInt(p); err != nil {
				continue
			}
			c, err := psgc.CompileProgram(p, col)
			if err != nil {
				log.Fatal(err)
			}
			res, err := c.Run(psgc.RunOptions{Capacity: 16, CheckEveryStep: true, Fuel: 2_000_000})
			if err != nil {
				log.Fatalf("%v: soundness violation: %v", col, err)
			}
			programs++
			states += res.Steps
		}
		fmt.Printf("%-12s | %8d | %14d | 0\n", col, programs, states)
	}
}

// e8: code size — the ITA collector is a constant-size library while
// monomorphization grows with the number of distinct types.
func e8() {
	r := rand.New(rand.NewSource(8))
	fmt.Println("program size | distinct types (≈ specialized copies) | ITA blocks")
	for _, cfg := range []gen.Config{
		{MaxDepth: 3, MaxFuns: 1, Recursion: 3},
		{MaxDepth: 4, MaxFuns: 2, Recursion: 3},
		{MaxDepth: 5, MaxFuns: 3, Recursion: 3},
		{MaxDepth: 6, MaxFuns: 4, Recursion: 3},
	} {
		p := gen.Program(r, cfg)
		c, err := psgc.CompileProgram(p, psgc.Basic)
		if err != nil {
			log.Fatal(err)
		}
		n := baseline.SpecializationCount(c.Clos)
		fmt.Printf("%12d | %38d | %d\n", source.ProgramSize(p), n, baseline.ITACollectorBlocks)
	}
}

// e9: the region discipline's mutator overhead — machine steps of the
// compiled λGC program (without any collection) versus the λCLOS
// reference machine.
func e9() {
	progs := []struct {
		name string
		src  string
	}{
		{"arith", "fun f (n : int) : int = if0 n then 0 else n + f (n - 1)\ndo f 40"},
		{"pairs", allocHeavy},
		{"closures", "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\ndo (twice (fn (y : int) => y + 3)) 10"},
	}
	fmt.Println("program  | λGC steps | puts | gets")
	for _, p := range progs {
		c, err := psgc.Compile(p.src, psgc.Basic)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(psgc.RunOptions{Capacity: 0, Engine: runEngine}) // no collections
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s | %9d | %4d | %4d\n", p.name, res.Steps, res.Stats.Puts, res.Stats.Gets)
	}
}

// ---------------------------------------------------------------------------
// Remote mode and snapshot emission
// ---------------------------------------------------------------------------

// remoteRunRequest mirrors the service's RunRequest wire shape (the bench
// binary deliberately doesn't import internal/service: it exercises the
// HTTP surface a real client sees).
type remoteRunRequest struct {
	Source    string `json:"source"`
	Collector string `json:"collector"`
	Engine    string `json:"engine"`
	Capacity  *int   `json:"capacity,omitempty"`
}

type remoteRunResponse struct {
	Value  int     `json:"value"`
	Engine string  `json:"engine"`
	Cached bool    `json:"cached"`
	RunMs  float64 `json:"run_ms"`
}

// remoteRetries is the -retries budget for postWithRetry.
var remoteRetries int

// postWithRetry posts body to url, retrying transport errors and 429/503
// responses with jittered exponential backoff. A Retry-After header, when
// present and parseable, overrides the computed backoff (capped at 5s so a
// pathological server cannot stall the bench). The rng is seeded by the
// caller so retry schedules are reproducible run to run.
func postWithRetry(client *http.Client, url string, body []byte, rng *rand.Rand) (*http.Response, error) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				if d := time.Duration(secs) * time.Second; d < maxBackoff {
					backoff = d
				} else {
					backoff = maxBackoff
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			return resp, nil
		}
		if attempt >= remoteRetries {
			return nil, fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
		}
		// Full jitter on top of the exponential base spreads retries from
		// concurrent bench runs instead of synchronizing them.
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// percentile returns the p-th percentile (0 < p ≤ 1) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// remoteBench drives the E1 allocation-heavy workload through a running
// psgc-served instance: for each collector × engine it measures end-to-end
// request latency percentiles and prints them next to the in-process run
// time of the same program.
func remoteBench(base string) {
	const (
		warmup   = 3
		requests = 30
		capacity = 32
	)
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	fmt.Printf("remote %s: %d requests per row after %d warmups, capacity %d\n",
		base, requests, warmup, capacity)
	fmt.Println("collector    | engine | in-proc ms | remote p50 | p90 | p99 | ok")
	for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
		for _, eng := range []string{"env", "subst"} {
			// In-process reference number for the same program and engine.
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				log.Fatal(err)
			}
			e, _ := psgc.ParseEngine(eng)
			t0 := time.Now()
			res, err := c.Run(psgc.RunOptions{Capacity: capacity, Engine: e})
			if err != nil {
				log.Fatal(err)
			}
			inProcMs := float64(time.Since(t0)) / float64(time.Millisecond)
			ok := res.Value == want

			cp := capacity
			body, err := json.Marshal(remoteRunRequest{
				Source: allocHeavy, Collector: col.String(), Engine: eng, Capacity: &cp,
			})
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			lat := make([]float64, 0, requests)
			for i := 0; i < warmup+requests; i++ {
				t0 := time.Now()
				resp, err := postWithRetry(client, base+"/run", body, rng)
				if err != nil {
					log.Fatalf("remote run: %v", err)
				}
				var rr remoteRunResponse
				decErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if decErr != nil {
					log.Fatalf("remote run: decode: %v", decErr)
				}
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("remote run: status %d", resp.StatusCode)
				}
				if i < warmup {
					continue
				}
				lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
				ok = ok && rr.Value == want && rr.Engine == eng
			}
			sort.Float64s(lat)
			fmt.Printf("%-12s | %-6s | %10.3f | %10.3f | %7.3f | %7.3f | %v\n",
				col, eng, inProcMs,
				percentile(lat, 0.50), percentile(lat, 0.90), percentile(lat, 0.99), ok)
		}
	}
}

// snapshotRow is one E1 configuration measured under one engine.
type snapshotRow struct {
	Capacity    int     `json:"capacity"`
	Collector   string  `json:"collector"`
	Engine      string  `json:"engine"`
	Value       int     `json:"value"`
	ResultOK    bool    `json:"result_ok"`
	Steps       int     `json:"steps"`
	Collections int     `json:"collections"`
	Puts        int     `json:"puts"`
	Reclaimed   int     `json:"reclaimed"`
	MaxLive     int     `json:"max_live"`
	RunMs       float64 `json:"run_ms"`
}

type snapshotFile struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	// EnvSpeedupGeomean is the geometric mean over configurations of
	// subst-run-ms / env-run-ms (best of three runs each).
	EnvSpeedupGeomean float64       `json:"env_speedup_geomean"`
	Rows              []snapshotRow `json:"rows"`
}

// writeSnapshot runs the E1 workload under both engines and writes the
// BENCH_4.json artifact: per-configuration stats plus the headline
// env-over-subst speedup.
func writeSnapshot(path string) error {
	want, err := psgc.Interpret(allocHeavy)
	if err != nil {
		return err
	}
	snap := snapshotFile{Experiment: "e1", Workload: "allocHeavy (build 60)"}
	logSum, logN := 0.0, 0
	for _, capacity := range []int{16, 32, 64, 128} {
		for _, col := range []psgc.Collector{psgc.Basic, psgc.Forwarding, psgc.Generational} {
			c, err := psgc.Compile(allocHeavy, col)
			if err != nil {
				return err
			}
			var pair [2]float64 // best-of-3 ms, indexed by engine
			for _, eng := range []psgc.Engine{psgc.EngineEnv, psgc.EngineSubst} {
				best := math.Inf(1)
				var res psgc.Result
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					res, err = c.Run(psgc.RunOptions{Capacity: capacity, Engine: eng})
					if err != nil {
						return err
					}
					if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < best {
						best = ms
					}
				}
				pair[eng] = best
				snap.Rows = append(snap.Rows, snapshotRow{
					Capacity: capacity, Collector: col.String(), Engine: eng.String(),
					Value: res.Value, ResultOK: res.Value == want,
					Steps: res.Steps, Collections: res.Collections,
					Puts: res.Stats.Puts, Reclaimed: res.Stats.CellsReclaimed,
					MaxLive: res.Stats.MaxLiveCells, RunMs: best,
				})
			}
			if pair[psgc.EngineEnv] > 0 {
				logSum += math.Log(pair[psgc.EngineSubst] / pair[psgc.EngineEnv])
				logN++
			}
		}
	}
	if logN > 0 {
		snap.EnvSpeedupGeomean = math.Exp(logSum / float64(logN))
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, env speedup (geomean) %.2fx\n", path, len(snap.Rows), snap.EnvSpeedupGeomean)
	return nil
}
