package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const factorial = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\ndo fact 6"

// runCLI drives the command dispatch and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunInlineExpr(t *testing.T) {
	for _, gc := range []string{"basic", "forwarding", "generational"} {
		code, out, errOut := runCLI(t, "-gc", gc, "-capacity", "40", "-e", factorial)
		if code != 0 {
			t.Fatalf("-gc %s: exit %d, stderr %q", gc, code, errOut)
		}
		if strings.TrimSpace(out) != "720" {
			t.Errorf("-gc %s: output %q, want 720", gc, out)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fact.src")
	if err := os.WriteFile(path, []byte(factorial), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "720" {
		t.Errorf("output %q, want 720", out)
	}
}

func TestInterp(t *testing.T) {
	code, out, _ := runCLI(t, "-interp", "-e", "1 + 2 * 3")
	if code != 0 || strings.TrimSpace(out) != "7" {
		t.Errorf("exit %d output %q, want 0 and 7", code, out)
	}
}

func TestStats(t *testing.T) {
	code, out, errOut := runCLI(t, "-stats", "-capacity", "40", "-e",
		"fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 30")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) == "" {
		t.Errorf("no result printed")
	}
	for _, want := range []string{"collector:", "steps:", "collections:", "max live:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stats output missing %q:\n%s", want, errOut)
		}
	}
}

// TestCheckedRun exercises -check (the per-step well-formedness re-check)
// on a small program.
func TestCheckedRun(t *testing.T) {
	code, out, errOut := runCLI(t, "-check", "-capacity", "32", "-e", "fun f (n : int) : int = if0 n then 0 else n + f (n - 1)\ndo f 5")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "15" {
		t.Errorf("output %q, want 15", out)
	}
}

func TestShowForms(t *testing.T) {
	for _, form := range []string{"source", "cps", "clos", "gc"} {
		code, out, errOut := runCLI(t, "-show", form, "-e", factorial)
		if code != 0 {
			t.Fatalf("-show %s: exit %d, stderr %q", form, code, errOut)
		}
		if strings.TrimSpace(out) == "" {
			t.Errorf("-show %s printed nothing", form)
		}
	}
	if code, _, _ := runCLI(t, "-show", "nonsense", "-e", factorial); code == 0 {
		t.Errorf("-show nonsense should fail")
	}
}

func TestErrors(t *testing.T) {
	if code, _, errOut := runCLI(t, "-e", "fun f (x : int) : int = y\ndo 1"); code != 1 || errOut == "" {
		t.Errorf("ill-typed program: exit %d stderr %q, want 1 and a diagnostic", code, errOut)
	}
	if code, _, _ := runCLI(t, "-gc", "marksweep", "-e", "1"); code != 1 {
		t.Errorf("unknown collector: exit %d, want 1", code)
	}
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "missing-file.src"); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

const buildChain = "fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 30"

// TestTrace asserts -trace prints the pipeline spans and per-collection
// timeline to stderr while the result stays alone on stdout.
func TestTrace(t *testing.T) {
	code, out, errOut := runCLI(t, "-trace", "-gc", "forwarding", "-capacity", "24", "-e", buildChain)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "465" {
		t.Errorf("stdout %q, want just the value 465", out)
	}
	for _, want := range []string{"-- compile pipeline", "typecheck", "-- timeline", "collection 1 [gc]", "copies"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("trace output missing %q:\n%s", want, errOut)
		}
	}
}

// TestTraceJSON asserts -trace-json emits one machine-readable document
// with the result, pipeline spans, and timeline.
func TestTraceJSON(t *testing.T) {
	code, out, errOut := runCLI(t, "-trace-json", "-gc", "forwarding", "-capacity", "24", "-e", buildChain)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	var doc struct {
		Value    int `json:"value"`
		Steps    int `json:"steps"`
		Pipeline []struct {
			Phase string `json:"phase"`
		} `json:"pipeline"`
		Timeline struct {
			Allocs      int `json:"allocs"`
			Copies      int `json:"copies"`
			Collections []struct {
				Entry string `json:"entry"`
			} `json:"collections"`
		} `json:"timeline"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-trace-json output does not parse: %v\n%s", err, out)
	}
	if doc.Value != 465 || doc.Steps == 0 {
		t.Errorf("value %d steps %d, want 465 and nonzero steps", doc.Value, doc.Steps)
	}
	if len(doc.Pipeline) != 6 {
		t.Errorf("%d pipeline spans, want 6 phases", len(doc.Pipeline))
	}
	if len(doc.Timeline.Collections) == 0 || doc.Timeline.Copies == 0 {
		t.Errorf("timeline records no collections: %+v", doc.Timeline)
	}
	for _, c := range doc.Timeline.Collections {
		if c.Entry != "gc" {
			t.Errorf("forwarding collection entry %q, want gc", c.Entry)
		}
	}
}

const buildChainSrc = "fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 30"

// TestCoCheckCleanCLI asserts a clean co-checked run behaves exactly like a
// plain one: the value on stdout, exit 0, nothing on stderr.
func TestCoCheckCleanCLI(t *testing.T) {
	code, out, errOut := runCLI(t, "-cocheck", "-capacity", "40", "-e", buildChainSrc)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "465" {
		t.Errorf("output %q, want 465", out)
	}
	if strings.Contains(errOut, "divergence") {
		t.Errorf("clean co-checked run reported a divergence: %q", errOut)
	}
}

// TestCoCheckDivergenceCLI injects synthetic heap corruption under -cocheck:
// the oracle's (correct) value is still printed, but the divergence goes to
// stderr and the exit code is 1 so scripts notice.
func TestCoCheckDivergenceCLI(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-chaos", "machine.corrupt=1", "-cocheck", "-capacity", "40", "-e", buildChainSrc)
	if code != 1 {
		t.Fatalf("exit %d (stderr %q), want 1", code, errOut)
	}
	if strings.TrimSpace(out) != "465" {
		t.Errorf("output %q, want the oracle's 465", out)
	}
	if !strings.Contains(errOut, "engine divergence") {
		t.Errorf("stderr %q does not report the divergence", errOut)
	}

	// The deferred uninstall ran: the next in-process invocation is clean.
	code, out, errOut = runCLI(t, "-capacity", "40", "-e", buildChainSrc)
	if code != 0 || strings.TrimSpace(out) != "465" {
		t.Errorf("chaos registry leaked across invocations: exit %d output %q stderr %q", code, out, errOut)
	}
}

// TestChaosSpecRejectedCLI pins the error path for malformed -chaos specs.
func TestChaosSpecRejectedCLI(t *testing.T) {
	code, _, errOut := runCLI(t, "-chaos", "no.such.point=1", "-e", "1 + 2")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "no.such.point") {
		t.Errorf("stderr %q does not name the bad point", errOut)
	}
}

// TestCheckpointResumeCLI pauses a run with -checkpoint/-checkpoint-stop,
// then resumes the blob on the *other* backend and checks the final value
// and step count match an uninterrupted run.
func TestCheckpointResumeCLI(t *testing.T) {
	src := "fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 60"
	code, out, errOut := runCLI(t, "-stats", "-capacity", "32", "-backend", "arena", "-e", src)
	if code != 0 {
		t.Fatalf("reference run: exit %d, stderr %q", code, errOut)
	}
	wantVal := strings.TrimSpace(out)
	wantSteps := ""
	for _, line := range strings.Split(errOut, "\n") {
		if strings.HasPrefix(line, "steps:") {
			wantSteps = strings.TrimSpace(strings.TrimPrefix(line, "steps:"))
		}
	}
	if wantSteps == "" {
		t.Fatalf("no steps line in stderr %q", errOut)
	}

	blob := filepath.Join(t.TempDir(), "run.ckpt")
	code, out, errOut = runCLI(t, "-capacity", "32", "-backend", "arena",
		"-checkpoint", blob, "-checkpoint-every", "500", "-checkpoint-stop", "-e", src)
	if code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("paused run printed a value: %q", out)
	}
	if !strings.Contains(errOut, "run paused at step") {
		t.Fatalf("no pause notice in stderr %q", errOut)
	}
	if _, err := os.Stat(blob); err != nil {
		t.Fatalf("checkpoint blob missing: %v", err)
	}

	// Resume on the other backend: cross-backend migration from the CLI.
	code, out, errOut = runCLI(t, "-stats", "-backend", "map", "-resume", blob)
	if code != 0 {
		t.Fatalf("resume: exit %d, stderr %q", code, errOut)
	}
	if strings.TrimSpace(out) != wantVal {
		t.Errorf("resumed value %q, want %q", strings.TrimSpace(out), wantVal)
	}
	if !strings.Contains(errOut, "steps:       "+wantSteps) {
		t.Errorf("resumed steps differ: stderr %q, want steps %s", errOut, wantSteps)
	}
}

// TestResumeRejectsCorruptBlob: a truncated blob fails with a clean error.
func TestResumeRejectsCorruptBlob(t *testing.T) {
	blob := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(blob, []byte("psgcckp1 definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-resume", blob)
	if code != 1 || !strings.Contains(errOut, "checkpoint") {
		t.Fatalf("exit %d, stderr %q; want failure mentioning checkpoint", code, errOut)
	}
}
