// Command psgc compiles and runs programs of the simply-typed source
// language on the λGC abstract machine, linked against one of the three
// type-safe collectors of "Principled Scavenging".
//
// Usage:
//
//	psgc [flags] file.src        compile and run a program
//	psgc [flags] -e 'expr'       compile and run an inline program
//
// Flags:
//
//	-gc basic|forwarding|generational    collector (default basic)
//	-capacity N                          region capacity triggering GC (default 64; 0 = never collect)
//	-fixed                               disable heap growth
//	-check                               re-check machine-state well-formedness every step
//	-stats                               print memory statistics
//	-show source|cps|clos|gc             print an intermediate form and exit
//	-interp                              run the reference evaluator instead
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"psgc"
	"psgc/internal/closconv"
	"psgc/internal/cps"
	"psgc/internal/source"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc: ")

	var (
		gcName   = flag.String("gc", "basic", "collector: basic, forwarding, or generational")
		capacity = flag.Int("capacity", 64, "region capacity at which ifgc triggers a collection (0 disables)")
		fixed    = flag.Bool("fixed", false, "disable the survivor-driven heap growth policy")
		check    = flag.Bool("check", false, "re-check machine-state well-formedness after every step (slow)")
		stats    = flag.Bool("stats", false, "print memory statistics")
		show     = flag.String("show", "", "print an intermediate form (source, cps, clos, gc) and exit")
		expr     = flag.String("e", "", "inline program text instead of a file")
		interp   = flag.Bool("interp", false, "run the reference evaluator (no regions, no GC)")
	)
	flag.Parse()

	var src string
	switch {
	case *expr != "":
		src = *expr
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *interp {
		n, err := psgc.Interpret(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n)
		return
	}

	var col psgc.Collector
	switch *gcName {
	case "basic":
		col = psgc.Basic
	case "forwarding":
		col = psgc.Forwarding
	case "generational":
		col = psgc.Generational
	default:
		log.Fatalf("unknown collector %q (want basic, forwarding, or generational)", *gcName)
	}

	if *show != "" {
		showForm(src, col, *show)
		return
	}

	compiled, err := psgc.Compile(src, col)
	if err != nil {
		log.Fatal(err)
	}
	res, err := compiled.Run(psgc.RunOptions{
		Capacity:       *capacity,
		FixedCapacity:  *fixed,
		CheckEveryStep: *check,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Value)
	if *stats {
		fmt.Fprintf(os.Stderr, "collector:   %s\n", col)
		fmt.Fprintf(os.Stderr, "steps:       %d\n", res.Steps)
		fmt.Fprintf(os.Stderr, "collections: %d\n", res.Collections)
		fmt.Fprintf(os.Stderr, "puts:        %d\n", res.Stats.Puts)
		fmt.Fprintf(os.Stderr, "reclaimed:   %d cells in %d regions\n",
			res.Stats.CellsReclaimed, res.Stats.RegionsReclaimed)
		fmt.Fprintf(os.Stderr, "max live:    %d cells\n", res.Stats.MaxLiveCells)
	}
}

func showForm(src string, col psgc.Collector, form string) {
	p, err := source.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	switch form {
	case "source":
		fmt.Println(p)
	case "cps":
		cp, err := cps.Convert(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cp)
	case "clos":
		cp, err := cps.Convert(p)
		if err != nil {
			log.Fatal(err)
		}
		lp, err := closconv.Convert(cp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(lp)
	case "gc":
		compiled, err := psgc.CompileProgram(p, col)
		if err != nil {
			log.Fatal(err)
		}
		for i, nf := range compiled.Prog.Code {
			fmt.Printf("-- cd.%d: %s\n%s\n\n", i, nf.Name, nf.Fun)
		}
		fmt.Printf("-- main\n%s\n", compiled.Prog.Main)
	default:
		log.Fatalf("unknown form %q (want source, cps, clos, or gc)", form)
	}
}
