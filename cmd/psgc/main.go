// Command psgc compiles and runs programs of the simply-typed source
// language on the λGC abstract machine, linked against one of the three
// type-safe collectors of "Principled Scavenging".
//
// Usage:
//
//	psgc [flags] file.src        compile and run a program
//	psgc [flags] -e 'expr'       compile and run an inline program
//
// Flags:
//
//	-gc basic|forwarding|generational    collector (default basic)
//	-capacity N                          region capacity triggering GC (default 64; 0 = never collect)
//	-fixed                               disable heap growth
//	-check                               re-check machine-state well-formedness every step
//	-stats                               print memory statistics
//	-show source|cps|clos|gc             print an intermediate form and exit
//	-interp                              run the reference evaluator instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"psgc"
	"psgc/internal/closconv"
	"psgc/internal/cps"
	"psgc/internal/source"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command dispatch, factored out of main so tests can drive the
// CLI end to end. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psgc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gcName   = fs.String("gc", "basic", "collector: basic, forwarding, or generational")
		capacity = fs.Int("capacity", 64, "region capacity at which ifgc triggers a collection (0 disables)")
		fixed    = fs.Bool("fixed", false, "disable the survivor-driven heap growth policy")
		check    = fs.Bool("check", false, "re-check machine-state well-formedness after every step (slow)")
		stats    = fs.Bool("stats", false, "print memory statistics")
		show     = fs.String("show", "", "print an intermediate form (source, cps, clos, gc) and exit")
		expr     = fs.String("e", "", "inline program text instead of a file")
		interp   = fs.Bool("interp", false, "run the reference evaluator (no regions, no GC)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "psgc: %v\n", err)
		return 1
	}

	var src string
	switch {
	case *expr != "":
		src = *expr
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		src = string(data)
	default:
		fs.Usage()
		return 2
	}

	if *interp {
		n, err := psgc.Interpret(src)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, n)
		return 0
	}

	var col psgc.Collector
	switch *gcName {
	case "basic":
		col = psgc.Basic
	case "forwarding":
		col = psgc.Forwarding
	case "generational":
		col = psgc.Generational
	default:
		return fail(fmt.Errorf("unknown collector %q (want basic, forwarding, or generational)", *gcName))
	}

	if *show != "" {
		if err := showForm(stdout, src, col, *show); err != nil {
			return fail(err)
		}
		return 0
	}

	compiled, err := psgc.Compile(src, col)
	if err != nil {
		return fail(err)
	}
	res, err := compiled.Run(psgc.RunOptions{
		Capacity:       *capacity,
		FixedCapacity:  *fixed,
		CheckEveryStep: *check,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout, res.Value)
	if *stats {
		fmt.Fprintf(stderr, "collector:   %s\n", col)
		fmt.Fprintf(stderr, "steps:       %d\n", res.Steps)
		fmt.Fprintf(stderr, "collections: %d\n", res.Collections)
		fmt.Fprintf(stderr, "puts:        %d\n", res.Stats.Puts)
		fmt.Fprintf(stderr, "reclaimed:   %d cells in %d regions\n",
			res.Stats.CellsReclaimed, res.Stats.RegionsReclaimed)
		fmt.Fprintf(stderr, "max live:    %d cells\n", res.Stats.MaxLiveCells)
	}
	return 0
}

func showForm(stdout io.Writer, src string, col psgc.Collector, form string) error {
	p, err := source.Parse(src)
	if err != nil {
		return err
	}
	switch form {
	case "source":
		fmt.Fprintln(stdout, p)
	case "cps":
		cp, err := cps.Convert(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, cp)
	case "clos":
		cp, err := cps.Convert(p)
		if err != nil {
			return err
		}
		lp, err := closconv.Convert(cp)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, lp)
	case "gc":
		compiled, err := psgc.CompileProgram(p, col)
		if err != nil {
			return err
		}
		for i, nf := range compiled.Prog.Code {
			fmt.Fprintf(stdout, "-- cd.%d: %s\n%s\n\n", i, nf.Name, nf.Fun)
		}
		fmt.Fprintf(stdout, "-- main\n%s\n", compiled.Prog.Main)
	default:
		return fmt.Errorf("unknown form %q (want source, cps, clos, or gc)", form)
	}
	return nil
}
