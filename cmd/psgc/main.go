// Command psgc compiles and runs programs of the simply-typed source
// language on the λGC abstract machine, linked against one of the three
// type-safe collectors of "Principled Scavenging".
//
// Usage:
//
//	psgc [flags] file.src        compile and run a program
//	psgc [flags] -e 'expr'       compile and run an inline program
//
// Flags:
//
//	-gc basic|forwarding|generational    collector (default basic)
//	-policy static|adaptive              static uses -gc; adaptive profiles a pilot run, then decides
//	-engine env|subst                    execution engine (default env)
//	-backend map|arena                   memory substrate (default map)
//	-capacity N                          region capacity triggering GC (default 64; 0 = never collect)
//	-fixed                               disable heap growth
//	-check                               re-check machine-state well-formedness every step
//	-stats                               print memory statistics
//	-show source|cps|clos|gc             print an intermediate form and exit
//	-interp                              run the reference evaluator instead
//	-trace                               print pipeline-phase spans and the GC-event timeline
//	-trace-json                          emit the run and its full trace as JSON on stdout
//	-cocheck                             co-step the env engine against the substitution oracle
//	-chaos spec                          install fault injection ("point=prob[:delay],...")
//	-chaos-seed N                        deterministic seed for -chaos (default 1)
//	-checkpoint file                     write a checkpoint blob to file every -checkpoint-every steps
//	-checkpoint-every N                  checkpoint cadence in steps (default 50000)
//	-checkpoint-stop                     stop the run after the first checkpoint is written
//	-resume file                         resume a checkpoint blob (no source argument; -backend
//	                                     picks the substrate, so resuming an arena checkpoint
//	                                     with -backend map is a cross-backend migration)
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"psgc"
	"psgc/internal/closconv"
	"psgc/internal/cps"
	"psgc/internal/fault"
	"psgc/internal/obs"
	"psgc/internal/policy"
	"psgc/internal/regions"
	"psgc/internal/source"
)

// parseCollector maps a -gc flag value to a linkable collector.
func parseCollector(name string) (psgc.Collector, error) {
	switch name {
	case "basic":
		return psgc.Basic, nil
	case "forwarding":
		return psgc.Forwarding, nil
	case "generational":
		return psgc.Generational, nil
	default:
		return 0, fmt.Errorf("unknown collector %q (want basic, forwarding, or generational)", name)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command dispatch, factored out of main so tests can drive the
// CLI end to end. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psgc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gcName    = fs.String("gc", "basic", "collector: basic, forwarding, or generational")
		polName   = fs.String("policy", "static", "collector policy: static (use -gc as given) or adaptive (profile a pilot run, then decide collector and capacity)")
		engine    = fs.String("engine", "env", "execution engine: env (environment machine) or subst (substitution oracle; -check implies subst)")
		backend   = fs.String("backend", "map", "memory substrate: map (hash-map regions) or arena (contiguous slabs, Cheney scavenge)")
		capacity  = fs.Int("capacity", 64, "region capacity at which ifgc triggers a collection (0 disables)")
		fixed     = fs.Bool("fixed", false, "disable the survivor-driven heap growth policy")
		check     = fs.Bool("check", false, "re-check machine-state well-formedness after every step (slow)")
		stats     = fs.Bool("stats", false, "print memory statistics")
		show      = fs.String("show", "", "print an intermediate form (source, cps, clos, gc) and exit")
		expr      = fs.String("e", "", "inline program text instead of a file")
		interp    = fs.Bool("interp", false, "run the reference evaluator (no regions, no GC)")
		trace     = fs.Bool("trace", false, "print compile-phase spans and the GC-event timeline to stderr")
		traceJSON = fs.Bool("trace-json", false, "emit the result with the full trace as JSON on stdout")
		maxEvents = fs.Int("trace-events", obs.DefaultMaxEvents, "cap on retained timeline events")
		cocheck   = fs.Bool("cocheck", false, "co-step the env engine against the substitution oracle; a divergence fails the run")
		chaosSpec = fs.String("chaos", "", `fault-injection spec, "point=prob[:delay],..."`)
		chaosSeed = fs.Int64("chaos-seed", 1, "deterministic seed for -chaos")
		ckptFile  = fs.String("checkpoint", "", "write a checkpoint blob to this file every -checkpoint-every steps")
		ckptEvery = fs.Int("checkpoint-every", 0, "checkpoint cadence in machine steps (default 50000)")
		ckptStop  = fs.Bool("checkpoint-stop", false, "stop the run after the first checkpoint is written")
		resumePth = fs.String("resume", "", "resume a checkpoint blob instead of compiling a program")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "psgc: %v\n", err)
		return 1
	}

	if *chaosSpec != "" {
		reg, err := fault.ParseSpec(*chaosSpec, *chaosSeed)
		if err != nil {
			return fail(err)
		}
		fault.Install(reg)
		// The registry is process-global; uninstall on the way out so the
		// in-process CLI tests (and any other embedder) don't inherit it.
		defer fault.Install(nil)
	}

	// applyCheckpointFlags wires -checkpoint/-checkpoint-every/-checkpoint-stop
	// into run options; ckptErr carries an encode/write failure out of the
	// callback. Blobs are written via a temp file and rename so a kill
	// mid-write never leaves a torn checkpoint under the final name.
	var ckptErr error
	applyCheckpointFlags := func(opts *psgc.RunOptions) {
		if *ckptFile == "" {
			return
		}
		every := *ckptEvery
		if every <= 0 {
			every = psgc.DefaultProgressEvery
		}
		opts.CheckpointEvery = every
		opts.OnCheckpoint = func(ck *psgc.Checkpoint) bool {
			blob, err := ck.Encode()
			if err == nil {
				tmp := *ckptFile + ".tmp"
				if err = os.WriteFile(tmp, blob, 0o644); err == nil {
					err = os.Rename(tmp, *ckptFile)
				}
			}
			if err != nil {
				ckptErr = err
				return false
			}
			fmt.Fprintf(stderr, "psgc: checkpoint at step %d -> %s\n", ck.Steps, *ckptFile)
			return !*ckptStop
		}
	}
	// finish prints the outcome shared by fresh and resumed runs; a
	// checkpoint stop is a pause, not a failure.
	finish := func(res psgc.Result, err error) int {
		if ckptErr != nil {
			return fail(fmt.Errorf("write checkpoint: %w", ckptErr))
		}
		if err != nil {
			if errors.Is(err, psgc.ErrCheckpointed) {
				fmt.Fprintf(stderr, "psgc: run paused at step %d (resume with -resume %s)\n", res.Steps, *ckptFile)
				return 0
			}
			return fail(err)
		}
		fmt.Fprintln(stdout, res.Value)
		if *stats {
			fmt.Fprintf(stderr, "steps:       %d\n", res.Steps)
			fmt.Fprintf(stderr, "collections: %d\n", res.Collections)
			fmt.Fprintf(stderr, "puts:        %d\n", res.Stats.Puts)
		}
		return 0
	}

	if *resumePth != "" {
		if *expr != "" || fs.NArg() > 0 {
			return fail(errors.New("-resume takes no source program (the checkpoint carries it)"))
		}
		blob, err := os.ReadFile(*resumePth)
		if err != nil {
			return fail(err)
		}
		ck, err := psgc.DecodeCheckpoint(blob)
		if err != nil {
			return fail(err)
		}
		be, err := regions.ParseBackend(*backend)
		if err != nil {
			return fail(err)
		}
		opts := psgc.RunOptions{Backend: be, CoCheck: *cocheck,
			CheckpointMeta: psgc.CheckpointMeta{SourceHash: ck.SourceHash, TraceID: ck.TraceID}}
		applyCheckpointFlags(&opts)
		return finish(ck.Resume(opts))
	}

	var src string
	switch {
	case *expr != "":
		src = *expr
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		src = string(data)
	default:
		fs.Usage()
		return 2
	}

	if *interp {
		n, err := psgc.Interpret(src)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, n)
		return 0
	}

	col, err := parseCollector(*gcName)
	if err != nil {
		return fail(err)
	}
	pol, err := policy.Parse(*polName)
	if err != nil {
		return fail(err)
	}

	if *show != "" {
		if err := showForm(stdout, src, col, *show); err != nil {
			return fail(err)
		}
		return 0
	}

	tracing := *trace || *traceJSON
	compiled, pipeline, err := psgc.CompileTraced(src, col)
	if err != nil {
		return fail(err)
	}
	eng, err := psgc.ParseEngine(*engine)
	if err != nil {
		return fail(err)
	}
	be, err := regions.ParseBackend(*backend)
	if err != nil {
		return fail(err)
	}

	// -policy adaptive: run a profiled pilot with the fallback collector,
	// feed its profile to the policy engine, and let the decision pick the
	// collector and capacity for the run whose value we print. The CLI has
	// no cross-invocation store, so the pilot run stands in for a warm one.
	var decision *policy.Decision
	runCapacity := *capacity
	if pol == policy.Adaptive {
		pe := policy.NewEngine(obs.NewProfileStore(4))
		const hash = "cli"
		prof := compiled.Profiler()
		if _, err := compiled.Run(psgc.RunOptions{
			Capacity: *capacity, FixedCapacity: *fixed, Backend: be, Profiler: prof,
		}); err != nil {
			return fail(fmt.Errorf("adaptive pilot run: %w", err))
		}
		pe.Observe(hash, col.String(), prof.Profile())
		d := pe.Decide(hash, col.String(), *capacity)
		decision = &d
		runCapacity = d.Capacity
		if d.Collector != col.String() {
			if col, err = parseCollector(d.Collector); err != nil {
				return fail(err)
			}
			if compiled, pipeline, err = psgc.CompileTraced(src, col); err != nil {
				return fail(err)
			}
		}
	}

	opts := psgc.RunOptions{
		Capacity:       runCapacity,
		FixedCapacity:  *fixed,
		CheckEveryStep: *check,
		Engine:         eng,
		Backend:        be,
		Policy:         pol,
		Decision:       decision,
		CheckpointMeta: psgc.CheckpointMeta{SourceHash: fmt.Sprintf("%x", sha256.Sum256([]byte(src)))},
	}
	applyCheckpointFlags(&opts)
	var divergence *psgc.Divergence
	if *cocheck {
		opts.CoCheck = true
		opts.OnDivergence = func(d psgc.Divergence) { divergence = &d }
	}
	var rec *obs.Recorder
	if tracing {
		rec = compiled.Recorder()
		rec.MaxEvents = *maxEvents
		opts.Recorder = rec
	}
	res, err := compiled.Run(opts)
	if err != nil || ckptErr != nil {
		if ckptErr != nil {
			return fail(fmt.Errorf("write checkpoint: %w", ckptErr))
		}
		if errors.Is(err, psgc.ErrCheckpointed) {
			fmt.Fprintf(stderr, "psgc: run paused at step %d (resume with -resume %s)\n", res.Steps, *ckptFile)
			return 0
		}
		return fail(err)
	}
	if divergence != nil {
		// The printed value is the oracle's and therefore correct, but an
		// engine divergence is a bug worth a hard failure in scripts.
		fmt.Fprintln(stdout, res.Value)
		fmt.Fprintf(stderr, "psgc: engine divergence: %s\n", divergence)
		return 1
	}
	if *traceJSON {
		out := struct {
			Value       int             `json:"value"`
			Steps       int             `json:"steps"`
			Collections int             `json:"collections"`
			Pipeline    []obs.PhaseSpan `json:"pipeline"`
			Timeline    *obs.Timeline   `json:"timeline"`
		}{res.Value, res.Steps, res.Collections, pipeline, rec.Timeline()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Fprintln(stdout, res.Value)
	if *trace {
		printTrace(stderr, pipeline, rec.Timeline())
	}
	if *stats {
		fmt.Fprintf(stderr, "collector:   %s\n", col)
		if decision != nil {
			fmt.Fprintf(stderr, "policy:      adaptive -> %s at capacity %d (%s)\n",
				decision.Collector, decision.Capacity, decision.Reason)
		}
		fmt.Fprintf(stderr, "steps:       %d\n", res.Steps)
		fmt.Fprintf(stderr, "collections: %d\n", res.Collections)
		fmt.Fprintf(stderr, "puts:        %d\n", res.Stats.Puts)
		fmt.Fprintf(stderr, "reclaimed:   %d cells in %d regions\n",
			res.Stats.CellsReclaimed, res.Stats.RegionsReclaimed)
		fmt.Fprintf(stderr, "max live:    %d cells\n", res.Stats.MaxLiveCells)
	}
	return 0
}

// printTrace renders the compile-phase spans and the GC-event timeline in a
// human-readable form, mirroring the JSON served by /run?trace=1.
func printTrace(w io.Writer, pipeline []obs.PhaseSpan, tl *obs.Timeline) {
	fmt.Fprintln(w, "-- compile pipeline")
	for _, s := range pipeline {
		fmt.Fprintf(w, "%-10s %8.3fms (at +%.3fms)\n", s.Phase, s.DurMs, s.StartMs)
	}
	fmt.Fprintln(w, "-- timeline")
	fmt.Fprintf(w, "steps %d  allocs %d  copies %d  forwards %d  scans %d\n",
		tl.Steps, tl.Allocs, tl.Copies, tl.Forwards, tl.Scans)
	fmt.Fprintf(w, "freed %d cells (%d bytes) in %d regions across %d collections\n",
		tl.CellsFreed, tl.BytesFreed, tl.RegionsFreed, len(tl.Collections))
	for _, c := range tl.Collections {
		open := ""
		if c.Open {
			open = " (open)"
		}
		fmt.Fprintf(w, "collection %d [%s] steps %d-%d: %d copies, %d forwards, %d scans, freed %d cells / %d bytes in %d regions%s\n",
			c.Index, c.Entry, c.StartStep, c.EndStep,
			c.Copies, c.Forwards, c.Scans, c.CellsFreed, c.BytesFreed, c.RegionsFreed, open)
	}
	if tl.DroppedEvents > 0 {
		fmt.Fprintf(w, "events retained %d (dropped %d)\n", len(tl.Events), tl.DroppedEvents)
	}
}

func showForm(stdout io.Writer, src string, col psgc.Collector, form string) error {
	p, err := source.Parse(src)
	if err != nil {
		return err
	}
	switch form {
	case "source":
		fmt.Fprintln(stdout, p)
	case "cps":
		cp, err := cps.Convert(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, cp)
	case "clos":
		cp, err := cps.Convert(p)
		if err != nil {
			return err
		}
		lp, err := closconv.Convert(cp)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, lp)
	case "gc":
		compiled, err := psgc.CompileProgram(p, col)
		if err != nil {
			return err
		}
		for i, nf := range compiled.Prog.Code {
			fmt.Fprintf(stdout, "-- cd.%d: %s\n%s\n\n", i, nf.Name, nf.Fun)
		}
		fmt.Fprintf(stdout, "-- main\n%s\n", compiled.Prog.Main)
	default:
		return fmt.Errorf("unknown form %q (want source, cps, clos, or gc)", form)
	}
	return nil
}
