// Command psgc-gate fronts a fleet of psgc-served backends: consistent-hash
// routing by (source hash, collector) so each backend's compiled-program
// cache warms for its own shard, health-checked ring membership with
// failover retries, a shared peer cache tier (/peer/fetch backing the
// backends' -peer flag), and /batch fan-out. See internal/gate and the
// "Fleet" section of DESIGN.md.
//
// Usage:
//
//	psgc-gate -backends http://127.0.0.1:8372,http://127.0.0.1:8373 [flags]
//
// Flags:
//
//	-addr :8371           listen address
//	-backends a,b,c       comma-separated psgc-served base URLs (required)
//	-seed N               ring placement + retry jitter seed (default 1)
//	-vnodes N             virtual nodes per backend (default 64)
//	-health-every D       health-check cadence (default 1s)
//	-health-timeout D     health probe timeout (default 2s)
//	-retries N            attempts per request across replicas (default 3)
//	-retry-base-ms N      failover backoff base in milliseconds (default 25)
//	-peer-timeout D       per-backend peer-export fetch timeout (default 2s)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"psgc/internal/gate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc-gate: ")

	var (
		addr          = flag.String("addr", ":8371", "listen address")
		backends      = flag.String("backends", "", "comma-separated psgc-served base URLs (required)")
		seed          = flag.Uint64("seed", 1, "ring placement and retry jitter seed")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per backend")
		healthEvery   = flag.Duration("health-every", time.Second, "health-check cadence")
		healthTimeout = flag.Duration("health-timeout", 2*time.Second, "health probe timeout")
		retries       = flag.Int("retries", 3, "attempts per request across distinct replicas")
		retryBaseMs   = flag.Int("retry-base-ms", 25, "failover backoff base in milliseconds")
		peerTimeout   = flag.Duration("peer-timeout", 2*time.Second, "per-backend peer-export fetch timeout")
		drainWindow   = flag.Duration("drain", 30*time.Second, "graceful shutdown window")
	)
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(strings.TrimSuffix(b, "/")); b != "" {
			urls = append(urls, b)
		}
	}
	g, err := gate.New(gate.Config{
		Backends:      urls,
		Seed:          *seed,
		VNodes:        *vnodes,
		HealthEvery:   *healthEvery,
		HealthTimeout: *healthTimeout,
		RetryMax:      *retries,
		RetryBaseMs:   *retryBaseMs,
		PeerTimeout:   *peerTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("listening on %s, fronting %d backends (seed=%d vnodes=%d)", *addr, len(urls), *seed, *vnodes)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (%s drain window)", *drainWindow)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
}
