// Command psgc-served serves the certified-GC compile-and-run pipeline
// over HTTP: a bounded worker pool in front of psgc.Compile / Run /
// Interpret, with a compiled-program LRU and the process-wide
// verified-collector cache behind it. See internal/service and the
// "Compile-and-run service" section of README.md for the endpoints and
// request/response JSON.
//
// Usage:
//
//	psgc-served [flags]
//
// Flags:
//
//	-addr :8372           listen address
//	-workers N            worker pool size (default 4)
//	-queue N              queue depth before load-shedding with 429 (default 64)
//	-cache N              compiled-program LRU entries (default 128)
//	-capacity N           default region capacity for /run (default 64)
//	-fuel N               default machine step budget (default 50M)
//	-steps-per-ms N       deadline_ms -> fuel conversion rate (default 25000)
//	-debug-addr addr      serve net/http/pprof on a separate listener (off by default)
//	-cocheck-sample F     fraction of env-engine runs co-checked against the oracle (default 0)
//	-watchdog-ms N        per-run wall-clock stall budget; 0 disables (default 0)
//	-shed-threshold F     queue fraction at which trace/stream requests are shed (default 0.75, negative disables)
//	-chaos spec           install fault injection, e.g. "worker.latency=0.1:5ms,machine.corrupt=0.01"
//	-chaos-seed N         deterministic seed for the chaos registry (default 1)
//	-engine name          default /run execution engine: "env" or "subst" (default env)
//	-backend name         default /run memory substrate: "map" or "arena" (default map)
//	-policy name          default /run collector policy: "static" or "adaptive" (default static)
//	-profile-cap N        program-profile store capacity in source hashes (default 1024)
//	-peer url             gate peer-fetch endpoint for the fleet cache tier (off by default)
//	-self url             this node's advertised base URL, excluded from its own peer fetches
//	-batch-max N          max items per /batch request (default 256)
//	-incident-dir dir     persist the incident log as <dir>/incidents.jsonl, replayed on boot (off by default)
//	-snapshot-wait-ms N   how long POST /snapshot waits for a step boundary (default 2000)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgc"
	"psgc/internal/fault"
	"psgc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc-served: ")

	var (
		addr        = flag.String("addr", ":8372", "listen address")
		workers     = flag.Int("workers", 4, "worker pool size")
		queue       = flag.Int("queue", 64, "queue depth before requests are shed with 429")
		cacheSize   = flag.Int("cache", 128, "compiled-program LRU capacity (entries)")
		cacheWeight = flag.Int("cache-weight", 0, "compiled-program LRU weight budget in AST nodes (0 = default 512k, negative disables)")
		capacity    = flag.Int("capacity", 64, "default region capacity for /run")
		fuel        = flag.Int("fuel", psgc.DefaultFuel, "default machine step budget")
		stepsPerMs  = flag.Int("steps-per-ms", 25_000, "fuel granted per millisecond of request deadline")
		drainWindow = flag.Duration("drain", 30*time.Second, "graceful shutdown window")
		debugAddr   = flag.String("debug-addr", "", "listen address for net/http/pprof (e.g. localhost:6060; empty disables)")

		cocheckSample = flag.Float64("cocheck-sample", 0, "fraction of env-engine runs co-checked against the substitution oracle (0 disables, 1 checks every run)")
		watchdogMs    = flag.Int("watchdog-ms", 0, "per-run wall-clock stall budget in milliseconds (0 disables)")
		shedThreshold = flag.Float64("shed-threshold", 0, "queue fraction at which trace/stream requests are shed (0 = default 0.75, negative disables)")
		chaosSpec     = flag.String("chaos", "", `fault-injection spec, "point=prob[:delay],..." (e.g. "worker.latency=0.1:5ms,machine.corrupt=0.01")`)
		chaosSeed     = flag.Int64("chaos-seed", 1, "deterministic seed for the chaos registry")

		engine     = flag.String("engine", "env", `default execution engine for /run: "env" or "subst"`)
		backend    = flag.String("backend", "map", `default memory substrate for /run: "map" or "arena"`)
		defPolicy  = flag.String("policy", "static", `default collector policy for /run: "static" or "adaptive"`)
		profileCap = flag.Int("profile-cap", 0, "program-profile store capacity in source hashes (0 = default 1024)")
		peerURL    = flag.String("peer", "", "gate peer-fetch endpoint for the fleet cache tier (e.g. http://gate:8371/peer/fetch; empty disables)")
		peerSelf   = flag.String("self", "", "this node's advertised base URL, so the gate skips it on peer fetches")
		batchMax   = flag.Int("batch-max", 0, "max items per /batch request (0 = default 256)")

		incidentDir  = flag.String("incident-dir", "", "directory for the persistent incident log (<dir>/incidents.jsonl, replayed on boot; empty keeps incidents in memory)")
		snapshotWait = flag.Int("snapshot-wait-ms", 0, "how long POST /snapshot waits for the run's next step boundary (0 = default 2000)")
	)
	flag.Parse()

	if *chaosSpec != "" {
		reg, err := fault.ParseSpec(*chaosSpec, *chaosSeed)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
		fault.Install(reg)
		log.Printf("chaos registry installed (seed %d): %s", *chaosSeed, *chaosSpec)
	}

	// pprof goes on its own listener (typically bound to localhost) so
	// profiling endpoints are never exposed on the service port.
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugServer := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof listening on %s", *debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		CacheWeight:     *cacheWeight,
		Capacity:        *capacity,
		DefaultFuel:     *fuel,
		StepsPerMilli:   *stepsPerMs,
		CoCheckSample:   *cocheckSample,
		WatchdogMs:      *watchdogMs,
		ShedThreshold:   *shedThreshold,
		DefaultEngine:   *engine,
		DefaultBackend:  *backend,
		DefaultPolicy:   *defPolicy,
		ProfileCapacity: *profileCap,
		PeerFetchURL:    *peerURL,
		PeerSelf:        *peerSelf,
		MaxBatchItems:   *batchMax,
		IncidentDir:     *incidentDir,
		SnapshotWaitMs:  *snapshotWait,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queue, *cacheSize)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (%s drain window)", *drainWindow)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	// Drain the service before the listener: svc.Shutdown flips /healthz to
	// shutting_down, and the listener must still be accepting so a fronting
	// gate can see the drain and POST /snapshot to migrate in-flight
	// streaming runs to a peer (which is also what frees their workers).
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("worker pool shutdown: %v", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
}
