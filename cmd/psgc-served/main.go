// Command psgc-served serves the certified-GC compile-and-run pipeline
// over HTTP: a bounded worker pool in front of psgc.Compile / Run /
// Interpret, with a compiled-program LRU and the process-wide
// verified-collector cache behind it. See internal/service and the
// "Compile-and-run service" section of README.md for the endpoints and
// request/response JSON.
//
// Usage:
//
//	psgc-served [flags]
//
// Flags:
//
//	-addr :8372           listen address
//	-workers N            worker pool size (default 4)
//	-queue N              queue depth before load-shedding with 429 (default 64)
//	-cache N              compiled-program LRU entries (default 128)
//	-capacity N           default region capacity for /run (default 64)
//	-fuel N               default machine step budget (default 50M)
//	-steps-per-ms N       deadline_ms -> fuel conversion rate (default 25000)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psgc"
	"psgc/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psgc-served: ")

	var (
		addr        = flag.String("addr", ":8372", "listen address")
		workers     = flag.Int("workers", 4, "worker pool size")
		queue       = flag.Int("queue", 64, "queue depth before requests are shed with 429")
		cacheSize   = flag.Int("cache", 128, "compiled-program LRU capacity (entries)")
		capacity    = flag.Int("capacity", 64, "default region capacity for /run")
		fuel        = flag.Int("fuel", psgc.DefaultFuel, "default machine step budget")
		stepsPerMs  = flag.Int("steps-per-ms", 25_000, "fuel granted per millisecond of request deadline")
		drainWindow = flag.Duration("drain", 30*time.Second, "graceful shutdown window")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		Capacity:      *capacity,
		DefaultFuel:   *fuel,
		StepsPerMilli: *stepsPerMs,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queue, *cacheSize)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (%s drain window)", *drainWindow)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("worker pool shutdown: %v", err)
	}
}
