package psgc

import (
	"testing"
)

var allCollectors = []Collector{Basic, Forwarding, Generational}

// checkAgainstReference compiles src under every collector, runs it with
// the given capacity, and asserts every run agrees with the reference
// evaluator. Returns the per-collector results.
func checkAgainstReference(t *testing.T, src string, capacity int) map[Collector]Result {
	t.Helper()
	want, err := Interpret(src)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	out := map[Collector]Result{}
	for _, col := range allCollectors {
		c, err := Compile(src, col)
		if err != nil {
			t.Fatalf("%v: compile: %v", col, err)
		}
		res, err := c.Run(RunOptions{Capacity: capacity})
		if err != nil {
			t.Fatalf("%v: run: %v", col, err)
		}
		if res.Value != want {
			t.Fatalf("%v: result %d, reference %d", col, res.Value, want)
		}
		out[col] = res
	}
	return out
}

const allocHeavy = `
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 30
`

func TestEndToEndNoCollection(t *testing.T) {
	checkAgainstReference(t, "1 + 2 * 3", 0)
	checkAgainstReference(t, "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\ndo fact 6", 0)
}

func TestEndToEndWithCollections(t *testing.T) {
	// Small capacity forces repeated collections while computing.
	results := checkAgainstReference(t, allocHeavy, 40)
	for col, res := range results {
		if res.Collections == 0 {
			t.Errorf("%v: expected at least one collection (got %d)", col, res.Collections)
		}
	}
}

func TestEndToEndHigherOrderWithCollections(t *testing.T) {
	src := `
fun compose (fg : (int -> int) * (int -> int)) : int -> int =
  fn (x : int) => (fst fg) ((snd fg) x)
fun iter (n : int) : int =
  if0 n then 42
  else let f = fn (x : int) => x + n in
       let g = fn (x : int) => x * 2 in
       let h = compose (f, g) in
       iter (n - 1) + h 0 - h 0
do iter 12
`
	results := checkAgainstReference(t, src, 48)
	for col, res := range results {
		if res.Collections == 0 {
			t.Errorf("%v: expected collections, got none", col)
		}
	}
}

func TestCollectorsReclaimGarbage(t *testing.T) {
	// A loop that allocates a fresh pair per iteration and drops it: any
	// working collector must keep the heap bounded.
	src := `
fun churn (n : int) : int =
  if0 n then 7
  else let junk = (n, n) in churn (n - 1)
do churn 200
`
	results := checkAgainstReference(t, src, 30)
	for col, res := range results {
		if res.Collections < 3 {
			t.Errorf("%v: expected several collections, got %d", col, res.Collections)
		}
		if res.Stats.CellsReclaimed == 0 {
			t.Errorf("%v: no cells reclaimed", col)
		}
		// The heap stays proportional to the live set (which grows with
		// the reified continuation chain), far below total allocation.
		if res.Stats.MaxLiveCells >= res.Stats.Puts {
			t.Errorf("%v: heap not bounded: max live %d of %d allocated", col, res.Stats.MaxLiveCells, res.Stats.Puts)
		}
	}
}

func TestGhostPreservationEndToEnd(t *testing.T) {
	// The expensive flagship test: whole compiled programs, collections
	// included, with machine-state well-formedness verified after every
	// single step, for all three collectors.
	src := `
fun build (n : int) : int =
  if0 n then 0
  else let p = (n, (n, n)) in fst p + build (n - 1)
do build 4
`
	want, err := Interpret(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range allCollectors {
		c, err := Compile(src, col)
		if err != nil {
			t.Fatalf("%v: %v", col, err)
		}
		res, err := c.Run(RunOptions{Capacity: 16, CheckEveryStep: true, Fuel: 2_000_000})
		if err != nil {
			t.Fatalf("%v: preservation/progress violated: %v", col, err)
		}
		if res.Value != want {
			t.Fatalf("%v: result %d, want %d", col, res.Value, want)
		}
		if res.Collections == 0 {
			t.Fatalf("%v: test did not exercise the collector", col)
		}
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	bad := []string{
		"fst 1",  // ill-typed
		"(1, 2)", // non-int main
		"x",      // unbound
		"1 +",    // parse error
	}
	for _, src := range bad {
		if _, err := Compile(src, Basic); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestInterpret(t *testing.T) {
	n, err := Interpret("6 * 7")
	if err != nil || n != 42 {
		t.Fatalf("Interpret = %d, %v", n, err)
	}
}

func TestCollectorString(t *testing.T) {
	if Basic.String() != "basic" || Forwarding.String() != "forwarding" || Generational.String() != "generational" {
		t.Errorf("Collector.String broken")
	}
}
