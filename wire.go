package psgc

// Compiled-entry wire format for the fleet's peer cache tier.
//
// A fleet node that misses its local compiled-program cache can fetch the
// entry from a peer instead of re-running the compile pipeline. What goes
// over the wire is only the elaborated λGC program plus the collector it is
// linked against: everything else a *Compiled carries is either derivable
// from the process-local verified-collector cache (entry-point addresses,
// the certified code prefix length) or an inspection convenience the run
// path never touches (the source and λCLOS intermediates).
//
// Import does not extend the trusted computing base to peers. The certified
// collector prefix of the imported program must be bit-identical to the one
// this process built and typechecked itself (collector.Load is
// deterministic, so honest peers always match), and every block after the
// prefix — the mutator's code — is re-verified by the λGC typechecker, the
// same checker a local compile ends with. A corrupt or malicious payload is
// rejected; it can never produce a runnable program that was not certified
// by this process.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"psgc/internal/collector"
	"psgc/internal/gclang"
	"psgc/internal/regions"
)

// wireEntry is the gob payload: the collector selection plus the elaborated
// program. A version byte guards against silent cross-version decoding.
type wireEntry struct {
	Version   int
	Collector Collector
	Prog      gclang.Program
}

// wireVersion is bumped whenever the payload shape or the λGC syntax
// changes incompatibly; imports of other versions are rejected.
const wireVersion = 1

func init() {
	// Every concrete type reachable from a gclang.Program through an
	// interface field must be registered for gob. The registry is shared
	// with the checkpoint wire format, so it lives with the types.
	gclang.RegisterGob()
}

// Export serializes the compiled entry for transfer to a peer node. The
// payload carries the elaborated λGC program and the collector choice; the
// source and λCLOS intermediates are not included (see ImportCompiled).
func (c *Compiled) Export() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireEntry{
		Version:   wireVersion,
		Collector: c.Collector,
		Prog:      c.Prog,
	}); err != nil {
		return nil, fmt.Errorf("psgc: export compiled entry: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportCompiled deserializes a peer's compiled entry and re-certifies it:
// the collector prefix must match this process's own verified collector
// exactly, and the mutator blocks and main term are re-run through the λGC
// typechecker. The returned Compiled runs like a locally compiled one; its
// Source and Clos inspection fields are zero (the wire format does not
// carry the intermediates the run path never reads).
func ImportCompiled(data []byte) (*Compiled, error) {
	var e wireEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("psgc: import compiled entry: %w", err)
	}
	if e.Version != wireVersion {
		return nil, fmt.Errorf("psgc: import compiled entry: wire version %d, want %d", e.Version, wireVersion)
	}
	c, err := recertify(e.Collector, e.Prog)
	if err != nil {
		return nil, fmt.Errorf("psgc: import compiled entry: %w", err)
	}
	return c, nil
}

// recertify links an untrusted elaborated program against the locally
// certified collector and re-verifies it: the collector prefix must render
// identically to this process's own certified blocks (which then replace
// it bit-for-bit), and everything after the prefix is re-run through the
// λGC typechecker. Both the peer cache import and the checkpoint decoder
// funnel through here — nothing deserialized enters the TCB unchecked.
func recertify(col Collector, prog gclang.Program) (*Compiled, error) {
	if col < Basic || col > Generational {
		return nil, fmt.Errorf("unknown collector %v", col)
	}
	v, err := collector.Load(col.Dialect())
	if err != nil {
		return nil, fmt.Errorf("psgc: internal error: %w", err)
	}
	if len(prog.Code) < len(v.Funs) {
		return nil, fmt.Errorf("program has %d code blocks, shorter than the %d-block collector prefix",
			len(prog.Code), len(v.Funs))
	}
	// The trusted prefix is only trusted because it is *ours*: each block
	// must render identically to the locally certified collector's.
	for i, want := range v.Funs {
		got := prog.Code[i]
		if got.Name != want.Name || got.Fun.String() != want.Fun.String() {
			return nil, fmt.Errorf("code block %d (%s) differs from the locally certified collector",
				i, want.Name)
		}
		// Share the local elaborated blocks so the prefix is certified
		// bit-for-bit regardless of how it was serialized.
		prog.Code[i] = want
	}
	checker := &gclang.Checker{Dialect: col.Dialect()}
	elab, _, err := checker.CheckProgramPrefix(prog, len(v.Funs))
	if err != nil {
		return nil, fmt.Errorf("program does not typecheck: %w", err)
	}
	entries := map[regions.Addr]bool{}
	for _, a := range v.Entries {
		entries[a] = true
	}
	entryNames := map[regions.Addr]string{}
	if col == Generational {
		entryNames[v.Minor.Addr] = "minor"
		entryNames[v.Major.Addr] = "major"
	} else {
		entryNames[v.GC.Addr] = "gc"
	}
	return &Compiled{
		Collector: col, Prog: elab,
		entries: entries, entryNames: entryNames, collectorFuns: len(v.Funs),
	}, nil
}
