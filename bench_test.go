package psgc

// The testing.B counterparts of the experiment harness (cmd/psgc-bench):
// one benchmark per DESIGN.md experiment, measuring the certified
// collectors on the λGC machine. See EXPERIMENTS.md for the recorded
// tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"psgc/internal/baseline"
	"psgc/internal/gclang"
	"psgc/internal/gen"
	"psgc/internal/names"
	"psgc/internal/regions"
	"psgc/internal/source"
	"psgc/internal/tags"
	"psgc/internal/workload"
)

// benchCollectOnce runs a single collection of the given shape/size.
func benchCollectOnce(b *testing.B, d gclang.Dialect, shape workload.Shape, size int) {
	b.Helper()
	c, err := workload.BuildCollectOnce(d, shape, size)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// E1: one full collection of a 256-cell list under each collector.
func BenchmarkBasicCollect(b *testing.B)        { benchCollectOnce(b, gclang.Base, workload.List, 256) }
func BenchmarkForwardingCollect(b *testing.B)   { benchCollectOnce(b, gclang.Forw, workload.List, 256) }
func BenchmarkGenerationalCollect(b *testing.B) { benchCollectOnce(b, gclang.Gen, workload.List, 256) }

// E2: continuation-region bound — reported as copied cells and peak
// continuations per op.
func BenchmarkContinuationRegion(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("list-%d", n), func(b *testing.B) {
			c, err := workload.BuildCollectOnce(gclang.Base, workload.List, n)
			if err != nil {
				b.Fatal(err)
			}
			var st workload.RunStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err = c.Run(2_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.MaxCont), "peak-conts")
			b.ReportMetric(float64(st.Copied), "copied")
		})
	}
}

// E3: sharing — basic blows up exponentially on DAGs, forwarding stays
// linear.
func BenchmarkSharingBasic(b *testing.B) {
	for _, depth := range []int{6, 10} {
		b.Run(fmt.Sprintf("dag-%d", depth), func(b *testing.B) {
			benchCollectOnce(b, gclang.Base, workload.DAG, depth)
		})
	}
}

func BenchmarkSharingForw(b *testing.B) {
	for _, depth := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("dag-%d", depth), func(b *testing.B) {
			benchCollectOnce(b, gclang.Forw, workload.DAG, depth)
		})
	}
}

// E4: space model of the two forwarding disciplines.
func BenchmarkForwardingSpace(b *testing.B) {
	var m baseline.SpaceModel
	for i := 0; i < b.N; i++ {
		m = baseline.SpaceOverhead(1 << 16)
	}
	b.ReportMetric(float64(m.PairedWords), "paired-words")
	b.ReportMetric(float64(m.TagBitsWords), "tagbit-words")
}

// E5: one minor generational collection of a 256-cell young list.
func BenchmarkGenerationalMinor(b *testing.B) {
	benchCollectOnce(b, gclang.Gen, workload.List, 256)
}

// E6a: tag normalization cost (decidability, Prop. 6.1).
func BenchmarkTagNormalize(b *testing.B) {
	tag := tags.Tag(tags.Int{})
	for i := 0; i < 512; i++ {
		tag = tags.Prod{L: tags.Int{}, R: tag}
	}
	for i := 0; i < 8; i++ {
		tag = tags.App{Fn: tags.Lam{Param: "u", Body: tags.Var{Name: "u"}}, Arg: tag}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tags.Normalize(tag); err != nil {
			b.Fatal(err)
		}
	}
}

// E6b: whole-pipeline compile + λGC typecheck of a mid-sized program.
func BenchmarkTypecheck(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	p := gen.Program(r, gen.Config{MaxDepth: 5, MaxFuns: 3, Recursion: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileProgram(p, Basic); err != nil {
			b.Fatal(err)
		}
	}
}

// Verified-collector cache: the cold path rebuilds and re-typechecks the
// collector on every compile (the pre-cache behavior); the cached path
// loads the shared verified collector and checks only the mutator's code.
// The gap is the per-request typechecking cost the service amortizes away.
func BenchmarkCompileCold(b *testing.B) {
	p := source.MustParse("fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 30")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compileProgramCold(p, Basic); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileCached(b *testing.B) {
	p := source.MustParse("fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 30")
	// Warm the verified-collector cache outside the timed region.
	if _, err := CompileProgram(p, Basic); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileProgram(p, Basic); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: end-to-end run with collections (no per-step checking — that is the
// test suite's job; this measures the machine's plain running cost).
func BenchmarkEndToEnd(b *testing.B) {
	src := "fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 40"
	for _, col := range []Collector{Basic, Forwarding, Generational} {
		b.Run(col.String(), func(b *testing.B) {
			c, err := Compile(src, col)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(RunOptions{Capacity: 48}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8: code-size model — specialization counting cost and result.
func BenchmarkSpecializationBlowup(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	p := gen.Program(r, gen.Config{MaxDepth: 5, MaxFuns: 3, Recursion: 3})
	c, err := CompileProgram(p, Basic)
	if err != nil {
		b.Fatal(err)
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = baseline.SpecializationCount(c.Clos)
	}
	b.ReportMetric(float64(n), "specializations")
	b.ReportMetric(float64(baseline.ITACollectorBlocks), "ita-blocks")
}

// E9: mutator overhead — compiled program with collections disabled.
func BenchmarkMutatorOverhead(b *testing.B) {
	src := "fun f (n : int) : int = if0 n then 0 else n + f (n - 1)\ndo f 60"
	ref := source.MustParse(src)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := source.Evaluator{}
			if _, err := ev.RunInt(ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lambda-gc", func(b *testing.B) {
		c, err := Compile(src, Basic)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Run(RunOptions{Capacity: 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Baseline comparison: the untrusted Go copying collector over the same
// heap shape as BenchmarkBasicCollect — what the paper lets us stop
// trusting.
func BenchmarkUntypedGoCollect(b *testing.B) {
	mem := regions.New[gclang.Value](0)
	r := mem.NewRegion()
	node, _ := mem.Put(r, gclang.PairV{L: gclang.Num{N: 1}, R: gclang.Num{N: 2}})
	tag := tags.Tag(tags.Prod{L: tags.Int{}, R: tags.Int{}})
	root := gclang.Value(gclang.AddrV{Addr: node})
	for i := 1; i < 256; i++ {
		a, _ := mem.Put(r, gclang.PairV{L: gclang.Num{N: i}, R: root})
		root = gclang.AddrV{Addr: a}
		tag = tags.Prod{L: tags.Int{}, R: tag}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := baseline.CopyRoot(mem, tag, root, true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// Ablation: capture-avoiding vs closed-payload tag substitution — the
// machine's fast path (see gclang.Subst.Closed).
func BenchmarkAblationTagSubst(b *testing.B) {
	big := tags.Tag(tags.Int{})
	for i := 0; i < 1024; i++ {
		big = tags.Prod{L: tags.Int{}, R: big}
	}
	target := tags.Tag(tags.Exist{Bound: "u", Body: tags.Prod{
		L: tags.Var{Name: "u"},
		R: tags.Exist{Bound: "w", Body: tags.Prod{L: tags.Var{Name: "t"}, R: tags.Var{Name: "w"}}},
	}})
	sub := map[names.Name]tags.Tag{"t": big}
	b.Run("capture-avoiding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tags.SubstAll(target, sub)
		}
	})
	b.Run("closed-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tags.SubstAllClosed(target, sub)
		}
	})
}

// Ablation: the isNormal fast path of tags.Normalize — collectors analyze
// large already-normal tags at every typecase.
func BenchmarkAblationNormalizeFastPath(b *testing.B) {
	normal := tags.Tag(tags.Int{})
	for i := 0; i < 2048; i++ {
		normal = tags.Prod{L: tags.Int{}, R: normal}
	}
	b.Run("already-normal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tags.Normalize(normal); err != nil {
				b.Fatal(err)
			}
		}
	})
	redex := tags.Tag(tags.App{Fn: tags.Lam{Param: "u", Body: tags.Var{Name: "u"}}, Arg: normal})
	b.Run("one-redex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tags.Normalize(redex); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: survivor-driven heap growth vs a fixed capacity generous
// enough to terminate — growth trades a larger heap for fewer
// collections.
func BenchmarkAblationHeapGrowth(b *testing.B) {
	src := "fun churn (m : int) : int =\n  if0 m then 7\n  else let junk = (m, m) in churn (m - 1)\ndo churn 60"
	run := func(b *testing.B, opts RunOptions) {
		c, err := Compile(src, Basic)
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err = c.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Collections), "collections")
		b.ReportMetric(float64(res.Stats.MaxLiveCells), "max-live")
	}
	b.Run("auto-grow-from-32", func(b *testing.B) {
		run(b, RunOptions{Capacity: 32})
	})
	b.Run("fixed-1024", func(b *testing.B) {
		run(b, RunOptions{Capacity: 1024, FixedCapacity: true})
	})
}

// E1 under both engines: the environment machine against the substitution
// oracle on the single-collection workloads, bare machines (no trace hook)
// so the numbers isolate the stepping cost. See EXPERIMENTS.md §E1 and
// BENCH_4.json for the recorded speedups.
func benchEnvVsSubst(b *testing.B, d gclang.Dialect, shape workload.Shape, size int) {
	b.Helper()
	c, err := workload.BuildCollectOnce(d, shape, size)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("subst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := gclang.NewMachine(c.Dialect, c.Prog, 0)
			if _, err := m.Run(2_000_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("env", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := gclang.NewEnvMachine(c.Dialect, c.Prog, 0)
			if _, err := m.Run(2_000_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEnvVsSubstBasicList(b *testing.B) {
	benchEnvVsSubst(b, gclang.Base, workload.List, 256)
}

func BenchmarkEnvVsSubstBasicListLarge(b *testing.B) {
	benchEnvVsSubst(b, gclang.Base, workload.List, 1024)
}

func BenchmarkEnvVsSubstForwDAG(b *testing.B) {
	benchEnvVsSubst(b, gclang.Forw, workload.DAG, 10)
}

func BenchmarkEnvVsSubstGenList(b *testing.B) {
	benchEnvVsSubst(b, gclang.Gen, workload.List, 256)
}

// BenchmarkEnvVsSubstEndToEnd compares the engines through the public
// Compiled.Run path (compile once, run with collections at capacity 48),
// i.e. what the service and CLI actually pay.
func BenchmarkEnvVsSubstEndToEnd(b *testing.B) {
	src := "fun build (n : int) : int =\n  if0 n then 0\n  else let p = (n, (n, n)) in fst p + build (n - 1)\ndo build 40"
	c, err := Compile(src, Basic)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []Engine{EngineSubst, EngineEnv} {
		b.Run(eng.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(RunOptions{Capacity: 48, Engine: eng}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
