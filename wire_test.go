package psgc

import (
	"strings"
	"testing"

	"psgc/internal/workload"
)

// TestWireRoundTrip exports a compiled entry, imports it, and checks the
// import runs identically to the original on every collector.
func TestWireRoundTrip(t *testing.T) {
	src := workload.AllocHeavySrc(25)
	for _, col := range []Collector{Basic, Forwarding, Generational} {
		c, err := Compile(src, col)
		if err != nil {
			t.Fatalf("%v: compile: %v", col, err)
		}
		data, err := c.Export()
		if err != nil {
			t.Fatalf("%v: export: %v", col, err)
		}
		imp, err := ImportCompiled(data)
		if err != nil {
			t.Fatalf("%v: import: %v", col, err)
		}
		if imp.Collector != col {
			t.Fatalf("imported collector %v, want %v", imp.Collector, col)
		}
		opts := RunOptions{Capacity: 24}
		want, err := c.Run(opts)
		if err != nil {
			t.Fatalf("%v: run original: %v", col, err)
		}
		got, err := imp.Run(opts)
		if err != nil {
			t.Fatalf("%v: run import: %v", col, err)
		}
		if got != want {
			t.Errorf("%v: imported run %+v, original %+v", col, got, want)
		}
		// Both engines must agree on the imported program too.
		gotSubst, err := imp.Run(RunOptions{Capacity: 24, Engine: EngineSubst})
		if err != nil {
			t.Fatalf("%v: run import on subst: %v", col, err)
		}
		if gotSubst.Value != want.Value {
			t.Errorf("%v: imported subst value %d, want %d", col, gotSubst.Value, want.Value)
		}
	}
}

// TestWireImportRecorder checks an imported entry still wires up the
// GC-event recorder (entry points and the certified prefix are
// reconstructed locally, not shipped).
func TestWireImportRecorder(t *testing.T) {
	c, err := Compile(workload.AllocHeavySrc(25), Generational)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}
	imp, err := ImportCompiled(data)
	if err != nil {
		t.Fatal(err)
	}
	rec := imp.Recorder()
	res, err := imp.Run(RunOptions{Capacity: 16, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline()
	if res.Collections == 0 {
		t.Fatal("workload did not collect; widen the capacity pressure")
	}
	if len(tl.Collections) != res.Collections {
		t.Errorf("timeline has %d collection spans, machine counted %d", len(tl.Collections), res.Collections)
	}
}

// TestWireImportRejectsGarbage checks malformed payloads fail cleanly.
func TestWireImportRejectsGarbage(t *testing.T) {
	if _, err := ImportCompiled([]byte("not a gob payload")); err == nil {
		t.Error("import of garbage succeeded")
	}
	if _, err := ImportCompiled(nil); err == nil {
		t.Error("import of an empty payload succeeded")
	}
}

// TestWireImportRejectsTamperedPrefix checks that a payload whose collector
// prefix differs from the locally certified collector is refused: peers are
// never part of the trusted computing base.
func TestWireImportRejectsTamperedPrefix(t *testing.T) {
	c, err := Compile(workload.AllocHeavySrc(25), Basic)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with a renamed first collector block.
	progCopy := c.Prog
	progCopy.Code = append(progCopy.Code[:0:0], c.Prog.Code...)
	progCopy.Code[0].Name = progCopy.Code[0].Name + "_evil"
	tamperedC := &Compiled{Collector: Basic, Prog: progCopy}
	data, err := tamperedC.Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCompiled(data); err == nil {
		t.Error("import accepted a tampered collector prefix")
	} else if !strings.Contains(err.Error(), "locally certified collector") {
		t.Errorf("unexpected rejection reason: %v", err)
	}
}
